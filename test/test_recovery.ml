(** Tests of the durable storage subsystem: real-disk backend with page
    checksums, write-ahead log, group commit, crash recovery, and the
    durable catalog. *)

open Frepro.Storage
open Frepro.Relational

let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Scratch directories *)

let dir_counter = ref 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_dir f =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "frepro-rec-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Workload helpers *)

let schema = Schema.make ~name:"K" [ ("ID", Schema.TNum); ("X", Schema.TNum) ]

let tup i x d =
  Ftuple.make [| Value.Int i; Value.crisp_num (float_of_int x) |] d

let batch ~seed ~start n =
  let rng = Random.State.make [| 0xD15C; seed |] in
  List.init n (fun k ->
      tup (start + k)
        (Random.State.int rng 1000)
        (0.125 *. float_of_int (1 + ((start + k + seed) mod 8))))

(* Bit-exact state of a relation: the raw heap records in scan order. *)
let raw_records rel =
  List.rev
    (Frepro.Storage.Heap_file.fold (Relation.file rel) ~init:[]
       ~f:(fun acc r -> r :: acc))

let check_raw msg expected actual =
  Alcotest.(check (list bytes)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Real disk basics *)

let real_disk_tests =
  [
    tc "roundtrip survives reopen, counts I/O" `Quick (fun () ->
        with_dir (fun dir ->
            let stats = Iostats.create () in
            let d = Real_disk.create ~page_size:128 ~dir stats in
            let p = Real_disk.alloc d in
            let buf = Bytes.init 128 (fun i -> Char.chr (i mod 251)) in
            Real_disk.write ~lsn:17 d p buf;
            Alcotest.(check bytes) "read back" buf (Real_disk.read d p);
            Alcotest.(check int) "reads" 1 (Iostats.page_reads stats);
            Alcotest.(check int) "writes" 1 (Iostats.page_writes stats);
            Real_disk.close d;
            let d2 = Real_disk.open_existing ~dir (Iostats.create ()) in
            let payload, lsn = Real_disk.read_with_lsn d2 p in
            Alcotest.(check bytes) "survives reopen" buf payload;
            Alcotest.(check int) "lsn stamped" 17 lsn;
            Real_disk.close d2));
    tc "alloc zeroes recycled pages on disk" `Quick (fun () ->
        with_dir (fun dir ->
            let d = Real_disk.create ~page_size:64 ~dir (Iostats.create ()) in
            let p = Real_disk.alloc d in
            Real_disk.write d p (Bytes.make 64 'z');
            Real_disk.free d [ p ];
            let p2 = Real_disk.alloc d in
            Alcotest.(check int) "page reused" p p2;
            Alcotest.(check bytes) "zeroed" (Bytes.make 64 '\000')
              (Real_disk.read d p2);
            Real_disk.close d));
    tc "bad page id raises the shared typed error" `Quick (fun () ->
        with_dir (fun dir ->
            let d = Real_disk.create ~dir (Iostats.create ()) in
            Alcotest.(check bool) "Bad_page" true
              (try
                 ignore (Real_disk.read d 7);
                 false
               with Sim_disk.Bad_page { page = 7; num_pages = 0 } -> true);
            Real_disk.close d));
    tc "page_size above 65536 rejected" `Quick (fun () ->
        (* The WAL encodes in-page offsets as u16; larger pages would
           silently truncate redo offsets. *)
        with_dir (fun dir ->
            Alcotest.(check bool) "Invalid_argument" true
              (try
                 ignore
                   (Real_disk.create ~page_size:65537 ~dir (Iostats.create ()));
                 false
               with Invalid_argument _ -> true)));
    tc "torn write leaves a detectable page" `Quick (fun () ->
        with_dir (fun dir ->
            let d = Real_disk.create ~page_size:256 ~dir (Iostats.create ()) in
            let p = Real_disk.alloc d in
            Real_disk.write d p (Bytes.make 256 'a');
            (match Fault.parse_spec "torn:nth=1" with
            | Ok spec -> Real_disk.set_fault d (Some (Fault.create spec))
            | Error m -> Alcotest.fail m);
            (try
               Real_disk.write d p (Bytes.make 256 'b');
               Alcotest.fail "torn write did not raise"
             with Fault.Injected { kind = Fault.Torn_write; _ } -> ());
            Real_disk.set_fault d None;
            Alcotest.(check bool) "tear detected on read" true
              (try
                 ignore (Real_disk.read d p);
                 false
               with Real_disk.Checksum_mismatch { page; _ } -> page = p);
            Real_disk.close d));
  ]

(* ------------------------------------------------------------------ *)
(* Durable environment: commit / crash / recover *)

let committed_roundtrip () =
  with_dir (fun dir ->
      let env = Env.open_durable ~dir ~page_size:512 ~pool_pages:8 () in
      let rel = Relation.of_list ~durable:true env schema (batch ~seed:1 ~start:0 40) in
      let expected = raw_records rel in
      Env.commit env;
      Env.crash env;
      let env2 = Env.open_durable ~dir ~pool_pages:8 () in
      let cat = Catalog.load_durable env2 in
      (match Catalog.find cat "K" with
      | None -> Alcotest.fail "relation lost"
      | Some rel2 ->
          Alcotest.(check int) "cardinality" 40 (Relation.cardinality rel2);
          check_raw "bit-identical records" expected (raw_records rel2);
          Alcotest.(check bool) "schema survives" true
            (Schema.attrs (Relation.schema rel2) = Schema.attrs schema));
      Env.close env2)

let uncommitted_tail_rolled_back () =
  with_dir (fun dir ->
      let env = Env.open_durable ~dir ~page_size:512 ~pool_pages:32 () in
      let rel = Relation.of_list ~durable:true env schema (batch ~seed:2 ~start:0 20) in
      Env.commit env;
      let expected = raw_records rel in
      (* Appended but never committed nor flushed: must vanish. *)
      List.iter (Relation.insert rel) (batch ~seed:3 ~start:20 15);
      Env.crash env;
      let env2 = Env.open_durable ~dir () in
      (match Env.recovery env2 with
      | Some r -> Alcotest.(check bool) "not clean or clean both fine" true (r.Recovery.replayed >= 0)
      | None -> Alcotest.fail "writable open must report recovery");
      let cat = Catalog.load_durable env2 in
      (match Catalog.find cat "K" with
      | None -> Alcotest.fail "relation lost"
      | Some rel2 ->
          Alcotest.(check int) "only committed tuples" 20
            (Relation.cardinality rel2);
          check_raw "committed prefix bit-identical" expected (raw_records rel2));
      Env.close env2)

let eviction_forces_commit () =
  with_dir (fun dir ->
      (* Pool of 2 frames over many pages: appends force evictions, and
         each evicted dirty page must force a covering commit (WAL rule +
         no-uncommitted-data). After a crash with NO explicit commit, the
         recovered state must be a prefix of the inserted sequence. *)
      let env = Env.open_durable ~dir ~page_size:256 ~pool_pages:2 () in
      let rel = Relation.create ~durable:true env schema in
      let tuples = batch ~seed:4 ~start:0 60 in
      List.iter (Relation.insert rel) tuples;
      let all = raw_records rel in
      (match Env.wal env with
      | Some w -> Alcotest.(check bool) "evictions forced commits" true (Wal.commits w > 0)
      | None -> Alcotest.fail "durable env has no wal");
      Env.crash env;
      let env2 = Env.open_durable ~dir () in
      let cat = Catalog.load_durable env2 in
      (match Catalog.find cat "K" with
      | None -> Alcotest.fail "relation lost"
      | Some rel2 ->
          let got = raw_records rel2 in
          let n = List.length got in
          Alcotest.(check bool) "some records survived" true (n > 0);
          check_raw "recovered state is an exact inserted prefix"
            (List.filteri (fun i _ -> i < n) all)
            got);
      Env.close env2)

let torn_wal_tail_truncated () =
  with_dir (fun dir ->
      let env = Env.open_durable ~dir ~page_size:512 () in
      let rel = Relation.of_list ~durable:true env schema (batch ~seed:5 ~start:0 10) in
      let expected = raw_records rel in
      ignore rel;
      Env.commit env;
      Env.close env;
      (* Simulate a torn append: garbage past the last commit point. *)
      let wal_path = Recovery.wal_path_of dir in
      let fd = Unix.openfile wal_path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
      let junk = Bytes.of_string "\x42\x13\x37garbage-torn-tail" in
      ignore (Unix.write fd junk 0 (Bytes.length junk));
      Unix.close fd;
      let env2 = Env.open_durable ~dir () in
      (match Env.recovery env2 with
      | Some r ->
          Alcotest.(check bool) "tail truncated" true (r.Recovery.truncated_bytes > 0)
      | None -> Alcotest.fail "no recovery report");
      let cat = Catalog.load_durable env2 in
      (match Catalog.find cat "K" with
      | None -> Alcotest.fail "relation lost"
      | Some rel2 -> check_raw "state intact" expected (raw_records rel2));
      Env.close env2)

let checkpoint_bounds_replay () =
  with_dir (fun dir ->
      let env = Env.open_durable ~dir ~page_size:512 () in
      let rel = Relation.of_list ~durable:true env schema (batch ~seed:6 ~start:0 30) in
      Env.checkpoint env;
      (match Env.wal env with
      | Some w ->
          Alcotest.(check int) "log rewritten to one snapshot record" 1
            (let s = Wal.scan (Wal.path w) in
             List.length s.Wal.scan_records)
      | None -> Alcotest.fail "no wal");
      List.iter (Relation.insert rel) (batch ~seed:7 ~start:30 10);
      Env.commit env;
      let expected = raw_records rel in
      Env.crash env;
      let env2 = Env.open_durable ~dir () in
      (match Env.recovery env2 with
      | Some r ->
          (* Replay covers only the post-checkpoint delta, not the
             original 30 tuples. *)
          Alcotest.(check bool) "bounded replay" true (r.Recovery.replayed < 30)
      | None -> Alcotest.fail "no recovery report");
      let cat = Catalog.load_durable env2 in
      (match Catalog.find cat "K" with
      | None -> Alcotest.fail "relation lost"
      | Some rel2 ->
          Alcotest.(check int) "all 40 tuples" 40 (Relation.cardinality rel2);
          check_raw "bit-identical" expected (raw_records rel2));
      (* A second open finds a clean log: recovery already checkpointed. *)
      Env.close env2;
      let env3 = Env.open_durable ~dir () in
      (match Env.recovery env3 with
      | Some r -> Alcotest.(check bool) "clean" true r.Recovery.clean
      | None -> Alcotest.fail "no recovery report");
      Env.close env3)

let readonly_worker_open () =
  with_dir (fun dir ->
      let env = Env.open_durable ~dir ~page_size:512 () in
      let _ = Relation.of_list ~durable:true env schema (batch ~seed:8 ~start:0 25) in
      Env.close env;
      (* Two read-only opens (shared-nothing workers) see the same data. *)
      let w1 = Env.open_durable ~dir ~readonly:true () in
      let w2 = Env.open_durable ~dir ~readonly:true () in
      let read env =
        match Catalog.find (Catalog.load_durable env) "K" with
        | Some rel -> raw_records rel
        | None -> Alcotest.fail "relation lost"
      in
      let r1 = read w1 and r2 = read w2 in
      check_raw "workers agree" r1 r2;
      Alcotest.(check int) "cardinality" 25 (List.length r1);
      (* Mutation through a read-only env is rejected. *)
      Alcotest.(check bool) "durable create rejected" true
        (try
           ignore (Relation.create ~durable:true w1 schema);
           false
         with Wal.Read_only _ | Invalid_argument _ -> true);
      Env.close w1;
      Env.close w2)

let flush_and_reset_stats_contract () =
  with_dir (fun dir ->
      let env = Env.open_durable ~dir ~page_size:512 () in
      let rel = Relation.create ~durable:true env schema in
      List.iter (Relation.insert rel) (batch ~seed:9 ~start:0 12);
      Env.flush env;
      (* After flush the pages are on the device (checksummed); commit
         was forced by the WAL rule before each write-back. *)
      (match Disk.as_real env.Env.disk with
      | Some d ->
          List.iter
            (fun (_, _, pages) ->
              Array.iter (fun p -> ignore (Real_disk.read d p)) pages)
            (Env.manifest env)
      | None -> Alcotest.fail "not durable");
      let expected = raw_records rel in
      (* reset_stats drops the pool; drop flushes first, so nothing is
         lost and the data is re-readable from disk. *)
      Env.reset_stats env;
      Alcotest.(check int) "stats zeroed" 0 (Iostats.total_ios env.Env.stats);
      check_raw "records survive a drop" expected (raw_records rel);
      Env.close env)

let eviction_during_image_capture () =
  with_dir (fun dir ->
      (* Regression: appending to a pre-checkpoint page logs a full page
         image first, and capturing that image reads through the buffer
         pool. With a 2-frame pool that read can evict a dirty logged
         frame, whose write-back re-enters the WAL via
         [ensure_committed] — so the image callback must run with the
         WAL mutex released (self-deadlock otherwise). Three appends to
         three distinct pre-checkpoint tail pages guarantee that by the
         third, both pool frames hold dirty logged pages and the
         image-capture read must evict one. *)
      let env = Env.open_durable ~dir ~page_size:256 ~pool_pages:2 () in
      let mk seed name =
        let schema =
          Schema.make ~name [ ("ID", Schema.TNum); ("X", Schema.TNum) ]
        in
        Relation.of_list ~durable:true env schema (batch ~seed ~start:0 4)
      in
      let rels = [ mk 21 "A"; mk 22 "B"; mk 23 "C" ] in
      Env.checkpoint env;
      List.iter
        (fun rel -> List.iter (Relation.insert rel) (batch ~seed:31 ~start:4 2))
        rels;
      Env.commit env;
      let expected = List.map raw_records rels in
      Env.crash env;
      let env2 = Env.open_durable ~dir () in
      let cat = Catalog.load_durable env2 in
      List.iteri
        (fun i name ->
          match Catalog.find cat name with
          | None -> Alcotest.fail (name ^ " lost")
          | Some rel ->
              check_raw (name ^ " bit-identical") (List.nth expected i)
                (raw_records rel))
        [ "A"; "B"; "C" ];
      Env.close env2)

let oob_heap_append_is_corrupt () =
  with_dir (fun dir ->
      (* A CRC-valid log paired with a smaller-paged data file must
         surface as a typed [Recovery.Corrupt], not abort redo with an
         untyped [Invalid_argument] from an out-of-bounds blit. *)
      Unix.mkdir dir 0o755;
      let wal = Wal.create ~path:(Recovery.wal_path_of dir) ~mode:Wal.Always in
      let fid = Wal.new_file wal in
      ignore (Wal.log_alloc wal ~fid ~page:0);
      ignore
        (Wal.log_heap_append wal ~page:0 ~off:60_000 ~count:1
           ~data:(Bytes.make 100 'x')
           ~image:(fun () -> Bytes.empty));
      Wal.commit wal;
      Wal.close wal;
      Alcotest.(check bool) "Corrupt" true
        (try
           ignore (Recovery.recover ~page_size:256 ~dir (Iostats.create ()));
           false
         with Recovery.Corrupt _ -> true))

let env_tests =
  [
    tc "commit survives crash bit-identically" `Quick committed_roundtrip;
    tc "uncommitted tail rolled back" `Quick uncommitted_tail_rolled_back;
    tc "eviction forces a covering commit" `Quick eviction_forces_commit;
    tc "image capture under eviction pressure" `Quick
      eviction_during_image_capture;
    tc "out-of-bounds heap append is Corrupt" `Quick oob_heap_append_is_corrupt;
    tc "torn WAL tail truncated on recovery" `Quick torn_wal_tail_truncated;
    tc "checkpoint bounds replay" `Quick checkpoint_bounds_replay;
    tc "read-only worker opens" `Quick readonly_worker_open;
    tc "flush / reset_stats contract" `Quick flush_and_reset_stats_contract;
  ]

(* ------------------------------------------------------------------ *)
(* Group commit *)

let group_commit_threads () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let wal =
        Wal.create ~path:(Recovery.wal_path_of dir) ~mode:Wal.Group
      in
      let n_threads = 4 and per_thread = 25 in
      let threads =
        List.init n_threads (fun ti ->
            Thread.create
              (fun () ->
                for k = 1 to per_thread do
                  let fid = Wal.new_file wal in
                  Wal.log_define wal ~fid
                    ~meta:(Bytes.of_string (Printf.sprintf "t%d-%d" ti k));
                  Wal.commit wal
                done)
              ())
      in
      List.iter Thread.join threads;
      let total = n_threads * per_thread in
      (* Concurrent commits may coalesce: a Commit record appended by
         one thread can cover another's records, in which case the
         covered [Wal.commit] appends no record of its own — it still
         returns only after its records are durable (checked below by
         re-scanning the log). *)
      Alcotest.(check bool) "commit records appended, possibly coalesced" true
        (let c = Wal.commits wal in c > 0 && c <= total);
      Alcotest.(check bool) "group batching never exceeds commit calls" true
        (Wal.fsyncs wal <= total);
      Wal.close wal;
      (* The log is clean and complete: every define survived. *)
      let s = Wal.scan (Recovery.wal_path_of dir) in
      Alcotest.(check int) "no torn tail" s.Wal.scan_file_len s.Wal.scan_valid_end;
      let defines =
        List.length
          (List.filter
             (fun (_, r) -> match r with Wal.Define _ -> true | _ -> false)
             s.Wal.scan_records)
      in
      Alcotest.(check int) "all defines durable" total defines)

let wal_tests =
  [ tc "group commit: concurrent committers all durable" `Quick group_commit_threads ]

(* ------------------------------------------------------------------ *)
(* qcheck: any single-byte corruption of a persisted page is detected *)

let prop_corruption_detected =
  QCheck.Test.make ~count:150
    ~name:"single-byte corruption always raises Checksum_mismatch"
    QCheck.(triple (int_bound 10_000) (int_bound 10_000) (int_range 1 255))
    (fun (seed, off_sel, xor) ->
      with_dir (fun dir ->
          let page_size = 256 in
          let stats = Iostats.create () in
          let d = Real_disk.create ~page_size ~dir stats in
          let rng = Random.State.make [| seed |] in
          let n_pages = 1 + Random.State.int rng 4 in
          let pages =
            List.init n_pages (fun _ ->
                let p = Real_disk.alloc d in
                Real_disk.write ~lsn:(Random.State.int rng 1000) d p
                  (Bytes.init page_size (fun _ ->
                       Char.chr (Random.State.int rng 256)));
                p)
          in
          Real_disk.close d;
          (* Flip one byte anywhere inside a random page's slot (payload
             or trailer — both are protected). *)
          let victim = List.nth pages (Random.State.int rng n_pages) in
          let slot = page_size + 16 in
          let off = 4096 + (victim * slot) + (off_sel mod slot) in
          let fd = Unix.openfile (Filename.concat dir "data.fsql") [ Unix.O_RDWR ] 0o644 in
          let b = Bytes.create 1 in
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          ignore (Unix.read fd b 0 1);
          Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor xor));
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          ignore (Unix.write fd b 0 1);
          Unix.close fd;
          let d2 = Real_disk.open_existing ~dir (Iostats.create ()) in
          let detected =
            try
              ignore (Real_disk.read d2 victim);
              false
            with Real_disk.Checksum_mismatch { page; _ } -> page = victim
          in
          Real_disk.close d2;
          detected))

(* ------------------------------------------------------------------ *)
(* qcheck: crash at a random WAL offset recovers exactly the last
   committed state *)

let prop_crash_offset_determinism =
  QCheck.Test.make ~count:60
    ~name:"crash at random WAL offset -> last committed state, bit-identical"
    QCheck.(pair (int_bound 10_000) (int_bound 10_000))
    (fun (seed, cut_sel) ->
      with_dir (fun dir ->
          (* Build batches with a commit after each; the pool is large
             enough that nothing is evicted, so the WAL alone carries
             the state and any cut offset is a physically possible
             crash point. Record the raw state at every commit. *)
          let env =
            Env.open_durable ~dir ~page_size:512 ~pool_pages:256
              ~wal_sync:Wal.Always ()
          in
          let rng = Random.State.make [| seed |] in
          let n_batches = 1 + Random.State.int rng 4 in
          let rel = Relation.create ~durable:true env schema in
          let wal = Option.get (Env.wal env) in
          let states = ref [ (Wal.committed_end wal, []) ] in
          let count = ref 0 in
          for b = 1 to n_batches do
            let n = 1 + Random.State.int rng 12 in
            List.iter (Relation.insert rel) (batch ~seed:(seed + b) ~start:!count n);
            count := !count + n;
            Env.commit env;
            states := (Wal.committed_end wal, raw_records rel) :: !states
          done;
          Env.crash env;
          (* Cut the log at a random offset (>= header) and recover. *)
          let wal_path = Recovery.wal_path_of dir in
          let len = (Unix.stat wal_path).Unix.st_size in
          let cut = Wal.header_size + (cut_sel mod (len - Wal.header_size + 1)) in
          let fd = Unix.openfile wal_path [ Unix.O_WRONLY ] 0o644 in
          Unix.ftruncate fd cut;
          Unix.close fd;
          let expected =
            (* Largest committed state whose commit point fits the cut. *)
            List.fold_left
              (fun best (lsn, recs) ->
                match best with
                | Some (blsn, _) when blsn >= lsn -> best
                | _ when lsn <= cut -> Some (lsn, recs)
                | _ -> best)
              None !states
            |> Option.map snd
            |> Option.value ~default:[]
          in
          let env2 = Env.open_durable ~dir () in
          let got =
            match Catalog.find (Catalog.load_durable env2) "K" with
            | Some rel2 -> raw_records rel2
            | None -> []
          in
          let ok = got = expected in
          Env.close env2;
          ok))

(* ------------------------------------------------------------------ *)
(* qcheck: recovery under torn-write fault clauses — torn data pages
   never survive undetected and the committed state is reproduced *)

let prop_torn_write_recovery =
  QCheck.Test.make ~count:40
    ~name:"torn data-page writes: recovery reproduces committed state"
    QCheck.(pair (int_bound 10_000) (int_range 1 6))
    (fun (seed, tear_every) ->
      with_dir (fun dir ->
          let env =
            Env.open_durable ~dir ~page_size:512 ~pool_pages:64
              ~wal_sync:Wal.Always ()
          in
          let rel = Relation.create ~durable:true env schema in
          let rng = Random.State.make [| seed |] in
          let committed = ref [] in
          let count = ref 0 in
          let n_batches = 1 + Random.State.int rng 3 in
          for b = 1 to n_batches do
            let n = 1 + Random.State.int rng 10 in
            List.iter (Relation.insert rel) (batch ~seed:(seed + (7 * b)) ~start:!count n);
            count := !count + n;
            Env.commit env;
            committed := raw_records rel
          done;
          (* Arm torn writes on the durable disk, then flush: some page
             write-backs tear (half the slot persists). The log already
             holds everything committed, so recovery must rebuild the
             exact committed state and leave no undetected torn page. *)
          (match Fault.parse_spec (Printf.sprintf "torn:every=%d" tear_every) with
          | Ok spec -> Env.set_fault env (Some (Fault.create ~seed spec))
          | Error m -> failwith m);
          (try Env.flush env with Fault.Injected _ -> ());
          Env.set_fault env None;
          Env.crash env;
          let env2 = Env.open_durable ~dir () in
          let wal2 = Option.get (Env.wal env2) in
          let disk2 = Option.get (Disk.as_real env2.Env.disk) in
          let survivors = Recovery.verify_pages wal2 disk2 in
          let got =
            match Catalog.find (Catalog.load_durable env2) "K" with
            | Some rel2 -> raw_records rel2
            | None -> []
          in
          let ok = survivors = [] && got = !committed in
          Env.close env2;
          ok))

(* ------------------------------------------------------------------ *)
(* qcheck: recovery is idempotent when the process dies during the
   post-redo checkpoint *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let prop_checkpoint_crash_idempotent =
  QCheck.Test.make ~count:40
    ~name:"crash mid-checkpoint write: recovery is idempotent"
    QCheck.(pair (int_bound 10_000) (int_bound 10_000))
    (fun (seed, cut_sel) ->
      with_dir (fun dir ->
          (* Committed workload, then a crash with a dirty pool. *)
          let env =
            Env.open_durable ~dir ~page_size:512 ~pool_pages:256
              ~wal_sync:Wal.Always ()
          in
          let rng = Random.State.make [| seed; 0xCC |] in
          let rel = Relation.create ~durable:true env schema in
          let count = ref 0 in
          for b = 1 to 1 + Random.State.int rng 3 do
            let n = 1 + Random.State.int rng 10 in
            List.iter (Relation.insert rel) (batch ~seed:(seed + b) ~start:!count n);
            count := !count + n;
            Env.commit env
          done;
          Env.crash env;
          let wal_path = Recovery.wal_path_of dir in
          let data_path = Filename.concat dir "data.fsql" in
          let wal0 = read_file wal_path and data0 = read_file data_path in
          (* Reference run: recovery to completion, checkpoint included.
             Its state and its checkpointed log are what every
             crash-interrupted retry must converge to. *)
          let env1 = Env.open_durable ~dir () in
          let expected =
            match Catalog.find (Catalog.load_durable env1) "K" with
            | Some r -> raw_records r
            | None -> []
          in
          Env.close env1;
          let ckpt_wal = read_file wal_path in
          (* Rewind to the pre-recovery files and plant a crash-torn
             checkpoint: a prefix of the new log sits in wal.fsql.tmp,
             the rename never happened. The next recovery must ignore
             the tmp entirely (checkpoint opens it with O_TRUNC), redo
             from the intact old log, and converge to the same state. *)
          write_file wal_path wal0;
          write_file data_path data0;
          let cut = cut_sel mod (String.length ckpt_wal + 1) in
          write_file (wal_path ^ ".tmp") (String.sub ckpt_wal 0 cut);
          let env2 = Env.open_durable ~dir () in
          let got =
            match Catalog.find (Catalog.load_durable env2) "K" with
            | Some r -> raw_records r
            | None -> []
          in
          Env.close env2;
          (* The retry rewrote the checkpoint through its own tmp+rename,
             so no stale tmp file survives. *)
          got = expected && not (Sys.file_exists (wal_path ^ ".tmp"))))

let suites =
  [
    ("recovery.real-disk", real_disk_tests);
    ("recovery.env", env_tests);
    ("recovery.wal", wal_tests);
    ( "recovery.qcheck",
      [
        QCheck_alcotest.to_alcotest prop_corruption_detected;
        QCheck_alcotest.to_alcotest prop_crash_offset_determinism;
        QCheck_alcotest.to_alcotest prop_torn_write_recovery;
        QCheck_alcotest.to_alcotest prop_checkpoint_crash_idempotent;
      ] );
  ]
