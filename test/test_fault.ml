(** Tests for the fault-tolerance plane: the deterministic fault-injection
    spec and its typed [Injected] exception, the typed storage errors, the
    exception-safe external sort (no leaked run pages on abort),
    retry/backoff, the admission circuit breaker, and the daemon's
    fault-tolerant serving path end to end — retries return bit-identical
    answers, retries never start without deadline budget, cancels abort a
    backoff promptly, fatal faults respawn the worker, and the breaker
    sheds when the error budget is gone. *)

open Frepro
open Frepro.Storage

let tc = Alcotest.test_case

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let fspec s =
  match Fault.parse_spec s with
  | Ok spec -> spec
  | Error m -> Alcotest.failf "bad spec %S: %s" s m

(* ------------------------------------------------------------------ *)
(* Spec syntax *)

let spec_tests =
  [
    tc "parse / print / reparse roundtrip" `Quick (fun () ->
        let s =
          "read:p=0.05;write:nth=100:fatal;torn:every=7;alloc:p=0.01;latency:p=0.02:ms=5"
        in
        let spec = fspec s in
        Alcotest.(check int) "five rules" 5 (List.length spec);
        let printed = Fault.spec_to_string spec in
        Alcotest.(check bool)
          "reparse is identical" true
          (fspec printed = spec));
    tc "defaults: transient severity, 1ms latency" `Quick (fun () ->
        (match fspec "read:nth=3" with
        | [ r ] ->
            Alcotest.(check bool) "transient" true (r.Fault.severity = Fault.Transient);
            Alcotest.(check bool) "nth" true (r.Fault.trigger = Fault.Nth 3)
        | _ -> Alcotest.fail "one rule expected");
        match fspec "latency:every=10" with
        | [ r ] ->
            Alcotest.(check (float 1e-9)) "1ms default" 0.001 r.Fault.delay_s
        | _ -> Alcotest.fail "one rule expected");
    tc "bad specs are rejected" `Quick (fun () ->
        List.iter
          (fun bad ->
            match Fault.parse_spec bad with
            | Ok _ -> Alcotest.failf "accepted %S" bad
            | Error _ -> ())
          [
            ""; "bogus:p=0.1"; "read"; "read:p=oops"; "read:nth=0";
            "read:p=1.5"; "read:p=0.1:wat"; "read:p=0.1:ms=-3";
          ]);
  ]

(* ------------------------------------------------------------------ *)
(* Injection at the Sim_disk sites *)

let fresh_disk ?(page_size = 16) () =
  let stats = Iostats.create () in
  Sim_disk.create ~page_size stats

let plane_tests =
  [
    tc "nth read fires exactly once, with page id and counters" `Quick
      (fun () ->
        let disk = fresh_disk () in
        let p = Sim_disk.alloc disk in
        Sim_disk.write disk p (Bytes.make 16 'a');
        let plane = Fault.create ~seed:1 (fspec "read:nth=2") in
        Sim_disk.set_fault disk (Some plane);
        ignore (Sim_disk.read disk p);
        (try
           ignore (Sim_disk.read disk p);
           Alcotest.fail "second read should fault"
         with
        | Fault.Injected
            { kind = Fault.Read_fault; severity = Fault.Transient; page } ->
            Alcotest.(check (option int)) "page id" (Some p) page);
        ignore (Sim_disk.read disk p) (* third read: nth fired, never again *);
        Alcotest.(check int) "one injection" 1 (Fault.injected plane);
        Alcotest.(check int)
          "read counter" 1
          (List.assoc "fault_read" (Fault.counters plane)));
    tc "write fault leaves the page untouched; torn write tears it" `Quick
      (fun () ->
        let disk = fresh_disk () in
        let p = Sim_disk.alloc disk in
        Sim_disk.set_fault disk (Some (Fault.create (fspec "write:nth=1")));
        (try
           Sim_disk.write disk p (Bytes.make 16 'A');
           Alcotest.fail "write should fault"
         with Fault.Injected { kind = Fault.Write_fault; _ } -> ());
        Alcotest.(check bytes)
          "no byte reached the page" (Bytes.make 16 '\000')
          (Sim_disk.read disk p);
        Sim_disk.set_fault disk (Some (Fault.create (fspec "torn:nth=1:fatal")));
        (try
           Sim_disk.write disk p (Bytes.make 16 'B');
           Alcotest.fail "torn write should fault"
         with Fault.Injected { kind = Fault.Torn_write; severity = Fault.Fatal; _ }
         -> ());
        let torn = Bytes.make 16 '\000' in
        Bytes.fill torn 0 8 'B';
        Alcotest.(check bytes)
          "half the buffer persisted" torn (Sim_disk.read disk p);
        (* a freed-then-recycled torn page comes back zeroed, so stale torn
           bytes can never poison a retried query *)
        Sim_disk.set_fault disk None;
        Sim_disk.free disk [ p ];
        let p2 = Sim_disk.alloc disk in
        Alcotest.(check int) "page recycled" p p2;
        Alcotest.(check bytes)
          "recycled page zeroed" (Bytes.make 16 '\000') (Sim_disk.read disk p2));
    tc "alloc fault leaves the disk unchanged" `Quick (fun () ->
        let disk = fresh_disk () in
        Sim_disk.set_fault disk (Some (Fault.create (fspec "alloc:nth=1")));
        (try
           ignore (Sim_disk.alloc disk);
           Alcotest.fail "alloc should fault"
         with Fault.Injected { kind = Fault.Alloc_fault; page = None; _ } -> ());
        Alcotest.(check int) "no page leaked" 0 (Sim_disk.live_pages disk);
        let p = Sim_disk.alloc disk in
        Alcotest.(check int) "next alloc succeeds" 0 p);
    tc "latency rules delay but never raise" `Quick (fun () ->
        let disk = fresh_disk () in
        let p = Sim_disk.alloc disk in
        Sim_disk.write disk p (Bytes.make 16 'x');
        let plane = Fault.create (fspec "latency:every=1:ms=0") in
        Sim_disk.set_fault disk (Some plane);
        ignore (Sim_disk.read disk p);
        ignore (Sim_disk.read disk p);
        Alcotest.(check int) "two latency events" 2 (Fault.latency_events plane);
        Alcotest.(check int) "no injections" 0 (Fault.injected plane));
    tc "typed storage errors carry their context" `Quick (fun () ->
        let disk = fresh_disk () in
        let p = Sim_disk.alloc disk in
        (try
           Sim_disk.write disk p (Bytes.make 9 'x');
           Alcotest.fail "short buffer should be rejected"
         with Sim_disk.Write_size { page; expected; got } ->
           Alcotest.(check int) "page" p page;
           Alcotest.(check int) "expected" 16 expected;
           Alcotest.(check int) "got" 9 got);
        let stats = Iostats.create () in
        let disk2 = Sim_disk.create ~page_size:16 stats in
        let pool = Buffer_pool.create (Disk.sim disk2) ~capacity:1 in
        let q1 = Sim_disk.alloc disk2 and q2 = Sim_disk.alloc disk2 in
        Buffer_pool.pin pool q1;
        try
          ignore (Buffer_pool.read pool q2);
          Alcotest.fail "all-pinned pool should refuse"
        with Buffer_pool.All_frames_pinned { page; capacity } ->
          Alcotest.(check int) "page" q2 page;
          Alcotest.(check int) "capacity" 1 capacity);
  ]

let determinism_prop =
  QCheck.Test.make ~count:50
    ~name:"same seed + same spec + same operations = same fault schedule"
    QCheck.small_int
    (fun seed ->
      let spec = fspec "read:p=0.3;write:p=0.2" in
      let run () =
        let disk = fresh_disk () in
        let p = Sim_disk.alloc disk in
        Sim_disk.write disk p (Bytes.make 16 'd');
        Sim_disk.set_fault disk (Some (Fault.create ~seed spec));
        let fired = ref [] in
        for i = 1 to 40 do
          (try ignore (Sim_disk.read disk p)
           with Fault.Injected _ -> fired := (`R, i) :: !fired);
          try Sim_disk.write disk p (Bytes.make 16 'd')
          with Fault.Injected _ -> fired := (`W, i) :: !fired
        done;
        !fired
      in
      run () = run ())

(* ------------------------------------------------------------------ *)
(* External sort never leaks run pages on abort *)

let build_input env n =
  let f = Heap_file.create env in
  for i = 0 to n - 1 do
    Heap_file.append f (Bytes.of_string (Printf.sprintf "rec-%04d-%020d" (n - i) i))
  done;
  f

let sort_leak_tests =
  [
    tc "aborted sort frees its run pages (injected fault)" `Quick (fun () ->
        let env = Env.create ~page_size:256 ~pool_pages:8 () in
        let input = build_input env 300 in
        let baseline = Disk.live_pages env.Env.disk in
        Env.set_fault env (Some (Fault.create (fspec "write:nth=3")));
        (try
           ignore
             (External_sort.sort input ~compare:Bytes.compare ~mem_pages:3);
           Alcotest.fail "expected an injected write fault"
         with Fault.Injected { kind = Fault.Write_fault; _ } -> ());
        Env.set_fault env None;
        Alcotest.(check int)
          "live pages back to baseline" baseline
          (Disk.live_pages env.Env.disk);
        (* the input survived and the environment still works *)
        let sorted =
          External_sort.sort input ~compare:Bytes.compare ~mem_pages:3
        in
        Alcotest.(check int)
          "records survived" 300 (Heap_file.num_records sorted);
        Heap_file.destroy sorted;
        Alcotest.(check int)
          "output freed too" baseline
          (Disk.live_pages env.Env.disk));
    tc "aborted sort frees its run pages (cancellation)" `Quick (fun () ->
        let env = Env.create ~page_size:256 ~pool_pages:8 () in
        let input = build_input env 300 in
        let baseline = Disk.live_pages env.Env.disk in
        let cancel = Cancel.create () in
        Cancel.cancel ~reason:"test" cancel;
        (try
           ignore
             (External_sort.sort ~cancel input ~compare:Bytes.compare
                ~mem_pages:3);
           Alcotest.fail "expected Cancelled"
         with Cancel.Cancelled _ -> ());
        Alcotest.(check int)
          "live pages back to baseline" baseline
          (Disk.live_pages env.Env.disk));
    tc "replacement-selection abort frees the in-progress run" `Quick
      (fun () ->
        let env = Env.create ~page_size:256 ~pool_pages:8 () in
        let input = build_input env 300 in
        let baseline = Disk.live_pages env.Env.disk in
        Env.set_fault env (Some (Fault.create (fspec "write:nth=5")));
        (try
           ignore
             (External_sort.sort ~run_strategy:External_sort.Replacement_selection
                input ~compare:Bytes.compare ~mem_pages:3);
           Alcotest.fail "expected an injected write fault"
         with Fault.Injected _ -> ());
        Env.set_fault env None;
        Alcotest.(check int)
          "live pages back to baseline" baseline
          (Disk.live_pages env.Env.disk));
  ]

(* ------------------------------------------------------------------ *)
(* Retry policy *)

let retry_tests =
  [
    tc "delay doubles then caps; no jitter means exact" `Quick (fun () ->
        let p =
          { Server.Retry.max_attempts = 5; base_delay_s = 0.01;
            max_delay_s = 0.04; jitter = 0.0 }
        in
        let rng = Random.State.make [| 7 |] in
        List.iter2
          (fun attempt want ->
            Alcotest.(check (float 1e-9))
              (Printf.sprintf "attempt %d" attempt)
              want
              (Server.Retry.delay_for p ~rng ~attempt))
          [ 1; 2; 3; 4 ] [ 0.01; 0.02; 0.04; 0.04 ]);
    tc "jitter stays in [1-j, 1+j] and is rng-deterministic" `Quick (fun () ->
        let p =
          { Server.Retry.max_attempts = 3; base_delay_s = 0.1;
            max_delay_s = 1.0; jitter = 0.5 }
        in
        let draw () =
          let rng = Random.State.make [| 42 |] in
          List.init 20 (fun i ->
              Server.Retry.delay_for p ~rng ~attempt:(1 + (i mod 3)))
        in
        let a = draw () and b = draw () in
        Alcotest.(check bool) "deterministic" true (a = b);
        List.iteri
          (fun i d ->
            let base = 0.1 *. (2.0 ** float_of_int (i mod 3)) in
            let base = Float.min base 1.0 in
            Alcotest.(check bool)
              (Printf.sprintf "delay %d in bounds" i)
              true
              (d >= (0.5 *. base) -. 1e-9 && d <= (1.5 *. base) +. 1e-9))
          a);
    tc "sleep completes when uncancelled" `Quick (fun () ->
        Alcotest.(check bool)
          "slept" true
          (Server.Retry.sleep 0.01 = `Slept));
    tc "cancel aborts a long backoff sleep promptly" `Quick (fun () ->
        let cancel = Cancel.create () in
        let _killer =
          Thread.create
            (fun () ->
              Thread.delay 0.05;
              Cancel.cancel ~reason:"test" cancel)
            ()
        in
        let t0 = Unix.gettimeofday () in
        let r = Server.Retry.sleep ~cancel 5.0 in
        let elapsed = Unix.gettimeofday () -. t0 in
        Alcotest.(check bool) "cancelled" true (r = `Cancelled);
        Alcotest.(check bool)
          (Printf.sprintf "returned in %.3fs, well before the 5s sleep" elapsed)
          true (elapsed < 1.0));
  ]

(* ------------------------------------------------------------------ *)
(* Circuit breaker (clock driven by the test) *)

let breaker_tests =
  [
    tc "opens at the threshold, sheds for the cooldown, then resets" `Quick
      (fun () ->
        let b =
          Server.Breaker.create ~window:8 ~threshold:0.5 ~min_samples:4
            ~cooldown_s:10.0 ()
        in
        Alcotest.(check bool) "starts closed" true (Server.Breaker.allow b ~now:0.0);
        Alcotest.(check bool) "fail 1" true
          (Server.Breaker.record b ~now:0.0 ~ok:false = `Stayed);
        Alcotest.(check bool) "ok" true
          (Server.Breaker.record b ~now:0.1 ~ok:true = `Stayed);
        Alcotest.(check bool) "fail 2 (3 samples < min)" true
          (Server.Breaker.record b ~now:0.2 ~ok:false = `Stayed);
        Alcotest.(check bool) "fail 3 opens (3/4 >= 0.5)" true
          (Server.Breaker.record b ~now:0.3 ~ok:false = `Opened);
        Alcotest.(check bool) "open during cooldown" true
          (Server.Breaker.is_open b ~now:5.0);
        Alcotest.(check bool) "sheds during cooldown" false
          (Server.Breaker.allow b ~now:5.0);
        Alcotest.(check bool) "allows after cooldown" true
          (Server.Breaker.allow b ~now:10.4);
        Alcotest.(check int) "opened once" 1 (Server.Breaker.opened_count b);
        (* opening cleared the window: one new failure is not enough *)
        Alcotest.(check bool) "fresh judgement" true
          (Server.Breaker.record b ~now:10.5 ~ok:false = `Stayed);
        Alcotest.(check bool) "still closed" true
          (Server.Breaker.allow b ~now:10.6));
    tc "failure rate slides with the window" `Quick (fun () ->
        (* min_samples above the window: the breaker can never open, so
           the sliding rate itself is observable *)
        let b =
          Server.Breaker.create ~window:4 ~threshold:0.9 ~min_samples:5
            ~cooldown_s:1.0 ()
        in
        List.iter
          (fun ok -> ignore (Server.Breaker.record b ~now:0.0 ~ok))
          [ false; false; false; false ];
        Alcotest.(check (float 1e-9)) "all failing" 1.0
          (Server.Breaker.failure_rate b);
        List.iter
          (fun ok -> ignore (Server.Breaker.record b ~now:0.0 ~ok))
          [ true; true; true; true ];
        Alcotest.(check (float 1e-9)) "old outcomes evicted" 0.0
          (Server.Breaker.failure_rate b));
  ]

(* ------------------------------------------------------------------ *)
(* Daemon end to end: the fault-tolerant serving path *)

let setup = Server.Demo.server_setup ~seed:11 ()

(* The J shape reads ~10 disk pages per fresh-environment execution (sort
   temporaries), so read-site schedules fire during it; a bare projection
   of T reads only 2, which makes it a safe probe query against schedules
   with a higher trigger. *)
let j_sql = "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V <= R.U)"
let t_sql = "SELECT T.ID FROM T"

let normal_of_relation rel =
  let arity = Relational.Schema.arity (Relational.Relation.schema rel) in
  let rows = ref [] in
  Relational.Relation.iter rel (fun t ->
      rows :=
        ( List.init arity (fun i ->
              Relational.Value.to_string (Relational.Ftuple.value t i)),
          Int64.bits_of_float (Relational.Ftuple.degree t) )
        :: !rows);
  List.sort compare !rows

let expected_answer sql =
  let env = Env.create () in
  let catalog = Relational.Catalog.create env in
  setup env catalog;
  let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql in
  normal_of_relation (Unnest.Planner.run q)

let normal_of_answer rows =
  List.sort compare
    (List.map
       (fun (r : Server.Client.row) -> (r.values, Int64.bits_of_float r.degree))
       rows)

let fast_retry =
  { Server.Retry.max_attempts = 3; base_delay_s = 0.001; max_delay_s = 0.01;
    jitter = 0.0 }

let wait_for ?(timeout = 10.0) what f =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

let daemon_fault_tests =
  [
    tc "transient fault is retried; the answer is bit-identical" `Quick
      (fun () ->
        let daemon =
          Server.Daemon.start ~workers:1 ~retry:fast_retry
            ~fault_spec:(fspec "read:nth=2") ~fault_seed:7 ~setup ()
        in
        let client = Server.Client.connect ~port:(Server.Daemon.port daemon) () in
        (match Server.Client.query client j_sql with
        | Server.Client.Answer { rows; _ } ->
            Alcotest.(check bool)
              "bit-identical to the fault-free sequential engine" true
              (normal_of_answer rows = expected_answer j_sql)
        | _ -> Alcotest.fail "expected an answer after one retry");
        Server.Client.close client;
        Server.Daemon.stop daemon;
        let c = Server.Daemon.counter_value daemon in
        Alcotest.(check int) "one injected fault" 1 (c "faults_injected");
        Alcotest.(check int) "one retry" 1 (c "retries");
        Alcotest.(check int) "completed" 1 (c "requests_completed");
        Alcotest.(check int) "no transient give-up" 0
          (c "requests_failed_transient"));
    tc "no retry starts when the deadline budget is below the backoff" `Quick
      (fun () ->
        (* every read faults, and the policy's backoff (10 s) dwarfs the
           150 ms deadline: the daemon must answer Retryable immediately
           instead of sleeping into a guaranteed deadline miss. *)
        let daemon =
          Server.Daemon.start ~workers:1
            ~retry:
              { Server.Retry.max_attempts = 5; base_delay_s = 10.0;
                max_delay_s = 10.0; jitter = 0.0 }
            ~fault_spec:(fspec "read:p=1") ~setup ()
        in
        let client = Server.Client.connect ~port:(Server.Daemon.port daemon) () in
        let t0 = Unix.gettimeofday () in
        (match Server.Client.query ~deadline_ms:150 client j_sql with
        | Server.Client.Retryable m ->
            Alcotest.(check bool)
              "reply explains the budget" true (contains m "budget")
        | _ -> Alcotest.fail "expected Retryable");
        let elapsed = Unix.gettimeofday () -. t0 in
        Alcotest.(check bool)
          (Printf.sprintf "no backoff sleep happened (%.3fs)" elapsed)
          true (elapsed < 5.0);
        Server.Client.close client;
        Server.Daemon.stop daemon;
        Alcotest.(check int)
          "zero retries" 0
          (Server.Daemon.counter_value daemon "retries");
        Alcotest.(check int)
          "gave up transiently" 1
          (Server.Daemon.counter_value daemon "requests_failed_transient"));
    tc "cancel during a backoff sleep aborts promptly" `Quick (fun () ->
        let daemon =
          Server.Daemon.start ~workers:1
            ~retry:
              { Server.Retry.max_attempts = 3; base_delay_s = 30.0;
                max_delay_s = 30.0; jitter = 0.0 }
            ~fault_spec:(fspec "read:p=1") ~setup ()
        in
        let client = Server.Client.connect ~port:(Server.Daemon.port daemon) () in
        let reply = ref None in
        let t0 = Unix.gettimeofday () in
        let th =
          Thread.create
            (fun () -> reply := Some (Server.Client.query client j_sql))
            ()
        in
        (* the retries counter is bumped just before the backoff sleep *)
        wait_for "the worker to enter its backoff" (fun () ->
            Server.Daemon.counter_value daemon "retries" >= 1);
        Server.Client.cancel client;
        Thread.join th;
        let elapsed = Unix.gettimeofday () -. t0 in
        (match !reply with
        | Some (Server.Client.Cancelled reason) ->
            Alcotest.(check bool)
              "reason names the client" true (contains reason "client")
        | _ -> Alcotest.fail "expected Cancelled");
        Alcotest.(check bool)
          (Printf.sprintf "aborted the 30s sleep in %.3fs" elapsed)
          true (elapsed < 10.0);
        Server.Client.close client;
        Server.Daemon.stop daemon;
        Alcotest.(check int)
          "cancel counted" 1
          (Server.Daemon.counter_value daemon "requests_cancelled"));
    tc "fatal fault answers Error, respawns the worker, keeps serving" `Quick
      (fun () ->
        (* nth=3: the J query reads ~10 pages on a fresh environment, so
           it trips the fault; the T projection reads only 2, so it stays
           under the trigger of the respawned (restarted) schedule. *)
        let daemon =
          Server.Daemon.start ~workers:1 ~retry:fast_retry
            ~fault_spec:(fspec "read:nth=3:fatal") ~setup ()
        in
        let client = Server.Client.connect ~port:(Server.Daemon.port daemon) () in
        (match Server.Client.query client j_sql with
        | Server.Client.Failed m ->
            Alcotest.(check bool) "names the fatal fault" true (contains m "fatal")
        | _ -> Alcotest.fail "expected Failed on the fatal fault");
        (* The respawned plane restarts its schedule, so the probe query
           must do zero disk reads — a bare projection of T does. *)
        (match Server.Client.query client t_sql with
        | Server.Client.Answer { rows; _ } ->
            Alcotest.(check bool)
              "respawned worker serves correct answers" true
              (normal_of_answer rows = expected_answer t_sql)
        | _ -> Alcotest.fail "expected an answer from the respawned worker");
        Server.Client.close client;
        Server.Daemon.stop daemon;
        let c = Server.Daemon.counter_value daemon in
        Alcotest.(check int) "one respawn" 1 (c "workers_respawned");
        Alcotest.(check int) "one failure" 1 (c "requests_failed");
        Alcotest.(check int) "one completion" 1 (c "requests_completed"));
    tc "breaker opens on repeated give-ups and sheds with Overloaded" `Quick
      (fun () ->
        let daemon =
          Server.Daemon.start ~workers:1
            ~retry:
              { Server.Retry.max_attempts = 1; base_delay_s = 0.001;
                max_delay_s = 0.001; jitter = 0.0 }
            ~breaker:
              (Server.Breaker.create ~window:8 ~threshold:0.5 ~min_samples:4
                 ~cooldown_s:30.0 ())
            ~fault_spec:(fspec "read:p=1") ~setup ()
        in
        let client = Server.Client.connect ~port:(Server.Daemon.port daemon) () in
        for i = 1 to 4 do
          match Server.Client.query client j_sql with
          | Server.Client.Retryable _ -> ()
          | _ -> Alcotest.failf "query %d: expected Retryable" i
        done;
        (match Server.Client.query client j_sql with
        | Server.Client.Overloaded -> ()
        | _ -> Alcotest.fail "expected the open breaker to shed");
        Server.Client.close client;
        Server.Daemon.stop daemon;
        let c = Server.Daemon.counter_value daemon in
        Alcotest.(check int) "breaker opened" 1 (c "breaker_opened");
        Alcotest.(check bool) "shed counted" true (c "requests_shed_breaker" >= 1);
        Alcotest.(check int) "four transient failures" 4
          (c "requests_failed_transient"));
    tc "client-side retry turns a server give-up into an answer" `Quick
      (fun () ->
        (* The server gives up instantly (one attempt), but the fault is a
           one-shot: the client's second submission runs clean. *)
        let daemon =
          Server.Daemon.start ~workers:1
            ~retry:
              { Server.Retry.max_attempts = 1; base_delay_s = 0.001;
                max_delay_s = 0.001; jitter = 0.0 }
            ~fault_spec:(fspec "read:nth=1") ~setup ()
        in
        let client = Server.Client.connect ~port:(Server.Daemon.port daemon) () in
        (match Server.Client.query ~retry:fast_retry client j_sql with
        | Server.Client.Answer { rows; _ } ->
            Alcotest.(check bool)
              "second submission is bit-identical" true
              (normal_of_answer rows = expected_answer j_sql)
        | _ -> Alcotest.fail "expected the client retry to recover");
        Server.Client.close client;
        Server.Daemon.stop daemon;
        let c = Server.Daemon.counter_value daemon in
        Alcotest.(check int) "one give-up" 1 (c "requests_failed_transient");
        Alcotest.(check int) "one completion" 1 (c "requests_completed"));
  ]

(* ------------------------------------------------------------------ *)
(* Engine-level chaos equivalence: under any fault seed, an execution
   that eventually succeeds is bit-identical to the fault-free answer. *)

let equivalence_prop =
  let expected = lazy (expected_answer j_sql) in
  QCheck.Test.make ~count:12
    ~name:"retried executions under random fault seeds are bit-identical"
    QCheck.small_int
    (fun seed ->
      let env = Env.create () in
      let catalog = Relational.Catalog.create env in
      setup env catalog;
      let q =
        Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper j_sql
      in
      Env.set_fault env
        (Some
           (Fault.create ~seed
              (fspec "read:p=0.15;write:p=0.1;alloc:p=0.05;torn:p=0.05")));
      let rec attempt n =
        match Unnest.Planner.run q with
        | answer -> Some (normal_of_relation answer)
        | exception Fault.Injected _ -> if n >= 6 then None else attempt (n + 1)
      in
      match attempt 1 with
      | None -> true (* exhausted: acceptable, only answers must be exact *)
      | Some got -> got = Lazy.force expected)

let suites =
  [
    ("fault spec", spec_tests);
    ("fault plane", plane_tests @ [ QCheck_alcotest.to_alcotest determinism_prop ]);
    ("fault sort-leaks", sort_leak_tests);
    ("fault retry", retry_tests);
    ("fault breaker", breaker_tests);
    ("fault daemon", daemon_fault_tests);
    ("fault equivalence", [ QCheck_alcotest.to_alcotest equivalence_prop ]);
  ]
