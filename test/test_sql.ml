(** Tests of the Fuzzy SQL front-end: lexer, parser, pretty-printer
    round-trips, analyzer binding and errors, and query-shape
    classification of the paper's example queries. *)

open Frepro
open Fuzzysql

let tc = Alcotest.test_case

(* ---------- parser ---------- *)

let parses sql = ignore (Parser.parse sql)

let parser_tests =
  [
    tc "paper Query 1 (flat, two relations)" `Quick (fun () ->
        parses
          "SELECT F.NAME, M.NAME FROM F, M WHERE F.AGE = M.AGE AND M.INCOME > \
           'medium high'");
    tc "paper Query 2 (nested IN)" `Quick (fun () ->
        let q =
          Parser.parse
            "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME \
             IN (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')"
        in
        Alcotest.(check int) "two where preds" 2 (List.length q.Ast.where));
    tc "IS IN / IS NOT IN spellings" `Quick (fun () ->
        parses "SELECT R.X FROM R WHERE R.Y is in (SELECT S.Z FROM S)";
        parses "SELECT R.X FROM R WHERE R.Y is not in (SELECT S.Z FROM S)");
    tc "quantifiers, EXISTS, scalar subquery" `Quick (fun () ->
        parses "SELECT R.X FROM R WHERE R.Y < ALL (SELECT S.Z FROM S WHERE S.V = R.U)";
        parses "SELECT R.X FROM R WHERE R.Y >= SOME (SELECT S.Z FROM S)";
        parses "SELECT R.X FROM R WHERE EXISTS (SELECT S.Z FROM S WHERE S.V = R.U)";
        parses "SELECT R.X FROM R WHERE NOT EXISTS (SELECT S.Z FROM S)";
        parses
          "SELECT R.NAME FROM CITIES_REGION_A R WHERE R.AVE_HOME_INCOME > \
           (SELECT MAX(S.AVE_HOME_INCOME) FROM CITIES_REGION_B S WHERE \
           S.POPULATION = R.POPULATION)");
    tc "WITH, GROUPBY, HAVING, DISTINCT, aliases" `Quick (fun () ->
        let q =
          Parser.parse
            "SELECT DISTINCT R.X, COUNT(R.Y) FROM Rel R GROUP BY R.X HAVING \
             COUNT(R.Y) > 2 WITH D >= 0.5"
        in
        Alcotest.(check bool) "distinct" true q.Ast.distinct;
        Alcotest.(check int) "groupby" 1 (List.length q.Ast.group_by);
        Alcotest.(check int) "having" 1 (List.length q.Ast.having);
        (match q.Ast.with_d with
        | Some { Ast.strict = false; value } ->
            Alcotest.(check (float 0.)) "threshold" 0.5 value
        | _ -> Alcotest.fail "WITH clause");
        parses "SELECT R.X FROM Rel R GROUPBY R.X WITH D > 0");
    tc "fuzzy literals" `Quick (fun () ->
        parses "SELECT R.X FROM R WHERE R.Y = TRAP(1, 2, 3, 4)";
        parses "SELECT R.X FROM R WHERE R.Y = TRI(1, 2, 3)";
        parses "SELECT R.X FROM R WHERE R.Y = ABOUT(35)";
        parses "SELECT R.X FROM R WHERE R.Y = ABOUT(35, 5)";
        parses "SELECT R.X FROM R WHERE R.Y = DIST(1:1, 2:0.8)");
    tc "operators" `Quick (fun () ->
        parses "SELECT R.X FROM R WHERE R.A = 1 AND R.B <> 2 AND R.C != 2 AND \
                R.D < 3 AND R.E <= 4 AND R.F > 5 AND R.G >= 6");
    tc "comments and case-insensitive keywords" `Quick (fun () ->
        parses "select r.x -- comment\nfrom R r where r.x = 1");
    tc "syntax errors are reported" `Quick (fun () ->
        let bad sql =
          try
            parses sql;
            Alcotest.failf "should not parse: %s" sql
          with Parser.Error _ | Lexer.Error _ -> ()
        in
        bad "SELECT FROM R";
        bad "SELECT R.X R.Y FROM R";
        bad "SELECT R.X FROM R WHERE";
        bad "SELECT R.X FROM R WITH D = 0.5";
        bad "SELECT R.X FROM R WHERE R.Y = 'unterminated";
        bad "SELECT R.X FROM R WHERE R.Y IN SELECT S.Z FROM S";
        bad "SELECT R.X FROM R trailing garbage");
  ]

let roundtrip_tests =
  [
    tc "pretty-print / parse round trip" `Quick (fun () ->
        List.iter
          (fun sql ->
            let q = Parser.parse sql in
            let printed = Pretty.query_to_string q in
            let q2 = Parser.parse printed in
            Alcotest.(check string) ("roundtrip: " ^ sql) printed
              (Pretty.query_to_string q2))
          [
            "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME \
             IN (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')";
            "SELECT R.X FROM R WHERE R.Y < ALL (SELECT S.Z FROM S WHERE S.V = R.U)";
            "SELECT R.X FROM R WHERE R.Y > (SELECT MAX(S.Z) FROM S WHERE S.V = R.U)";
            "SELECT R.X FROM R WHERE R.Y NOT IN (SELECT S.Z FROM S) WITH D >= 0.25";
            "SELECT DISTINCT R.X, COUNT(R.Y) FROM Rel R GROUPBY R.X HAVING \
             COUNT(R.Y) > 2";
            "SELECT R.X FROM R WHERE R.Y = DIST(1:1, 2:0.8) AND R.Z = TRAP(0, 1, 2, 3)";
          ]);
  ]

(* ---------- analyzer ---------- *)

let bind env sql = Test_util.bind_paper_query env sql

let analyzer_tests =
  [
    tc "binds paper Query 2 with correct shapes" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let q =
          bind env
            "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME \
             IN (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')"
        in
        Alcotest.(check int) "depth 2" 2 (Bound.depth q);
        Alcotest.(check int) "one FROM" 1 (List.length q.Bound.from));
    tc "terms resolve against numeric attributes only" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        (* NAME is a string attribute: 'medium young' stays a string. *)
        let q = bind env "SELECT F.NAME FROM F WHERE F.NAME = 'medium young'" in
        (match q.Bound.where with
        | [ Bound.Cmp (_, _, Bound.Lit (Relational.Value.Str _)) ] -> ()
        | _ -> Alcotest.fail "expected crisp string literal");
        (* AGE is numeric: 'medium young' must resolve to the term. *)
        let q2 = bind env "SELECT F.NAME FROM F WHERE F.AGE = 'medium young'" in
        match q2.Bound.where with
        | [ Bound.Cmp (_, _, Bound.Lit (Relational.Value.Fuzzy _)) ] -> ()
        | _ -> Alcotest.fail "expected fuzzy term");
    tc "correlation references get up = 1" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let q =
          bind env
            "SELECT F.NAME FROM F WHERE F.INCOME IN (SELECT M.INCOME FROM M \
             WHERE M.AGE = F.AGE)"
        in
        match q.Bound.where with
        | [ Bound.In (_, sub) ] -> (
            match sub.Bound.where with
            | [ Bound.Cmp (Bound.Ref a, _, Bound.Ref b) ] ->
                Alcotest.(check int) "local up" 0 a.Bound.up;
                Alcotest.(check int) "outer up" 1 b.Bound.up
            | _ -> Alcotest.fail "expected one correlation predicate")
        | _ -> Alcotest.fail "expected IN");
    tc "analyzer errors" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let bad sql =
          try
            ignore (bind env sql);
            Alcotest.failf "should not bind: %s" sql
          with Analyzer.Error _ -> ()
        in
        bad "SELECT F.NAME FROM NOSUCH";
        bad "SELECT F.NOPE FROM F";
        bad "SELECT F.NAME FROM F WHERE F.AGE = 'no such term'";
        bad "SELECT F.NAME FROM F WHERE F.AGE IN (SELECT M.AGE, M.INCOME FROM M)";
        bad "SELECT F.NAME FROM F WHERE F.AGE > (SELECT M.AGE FROM M)";
        bad "SELECT F.NAME FROM F, M WHERE NAME = 'x'" (* ambiguous *);
        bad "SELECT F.NAME FROM F WITH D >= 1.5";
        bad "SELECT COUNT(ID) FROM F HAVING AGE > 3" (* non-agg having *));
    tc "alias shadows relation name" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let q = bind env "SELECT G.NAME FROM F G WHERE G.AGE = 30" in
        Alcotest.(check int) "bound" 1 (List.length q.Bound.from));
  ]

(* ---------- classification ---------- *)

let classify env sql = Unnest.Classify.classify (bind env sql)

let shape_tests =
  [
    tc "paper query shapes classify as in the taxonomy" `Quick (fun () ->
        let env = Test_util.fresh_env () in
        let check sql expected =
          Alcotest.(check string) sql expected
            (Unnest.Classify.to_string (classify env sql))
        in
        check "SELECT F.NAME, F.AGE FROM F WHERE F.AGE = 'medium young'" "flat";
        check
          "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME IN \
           (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')"
          "type N";
        check
          "SELECT F.NAME FROM F WHERE F.INCOME IN (SELECT M.INCOME FROM M \
           WHERE M.AGE = F.AGE)"
          "type J";
        (* Query 4 of the paper *)
        check
          "SELECT F.NAME FROM F WHERE F.INCOME NOT IN (SELECT M.INCOME FROM M \
           WHERE M.AGE = F.AGE)"
          "type JX";
        (* Query 5 of the paper *)
        check
          "SELECT F.NAME FROM F WHERE F.INCOME > (SELECT MAX(M.INCOME) FROM M \
           WHERE M.AGE = F.AGE)"
          "type JA";
        check
          "SELECT F.NAME FROM F WHERE F.INCOME < ALL (SELECT M.INCOME FROM M \
           WHERE M.AGE = F.AGE)"
          "type JALL";
        check
          "SELECT F.NAME FROM F WHERE F.INCOME > SOME (SELECT M.INCOME FROM M \
           WHERE M.AGE = F.AGE)"
          "type JSOME";
        (* Query 6 of the paper: a 3-block chain. *)
        check
          "SELECT F.ID FROM F WHERE F.AGE = 'medium young' AND F.INCOME IN \
           (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE AND M.ID IN (SELECT \
           G.ID FROM F G WHERE G.AGE = M.AGE AND G.INCOME = F.INCOME))"
          "chain of 3 blocks";
        (* Two subqueries: not unnestable by the paper's rewrites. *)
        check
          "SELECT F.NAME FROM F WHERE F.INCOME IN (SELECT M.INCOME FROM M) \
           AND F.AGE IN (SELECT M.AGE FROM M)"
          "general nested";
        (* EXISTS / NOT EXISTS: fuzzy semi / anti joins. *)
        check
          "SELECT F.NAME FROM F WHERE EXISTS (SELECT M.ID FROM M WHERE M.AGE \
           = F.AGE)"
          "type JEXISTS";
        check
          "SELECT F.NAME FROM F WHERE NOT EXISTS (SELECT M.ID FROM M WHERE \
           M.AGE = F.AGE)"
          "type JNOTEXISTS";
        (* ... but EXISTS over a two-relation inner block stays general. *)
        check
          "SELECT F.NAME FROM F WHERE EXISTS (SELECT M.ID FROM M, F G WHERE \
           M.AGE = F.AGE)"
          "general nested");
  ]

let suites =
  [
    ("sql.parser", parser_tests);
    ("sql.roundtrip", roundtrip_tests);
    ("sql.analyzer", analyzer_tests);
    ("sql.classify", shape_tests);
  ]
