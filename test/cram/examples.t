The runnable examples produce the paper's numbers deterministically.

Quickstart reproduces Example 4.1:

  $ ../../examples/quickstart.exe | head -6
  query shape : type N
  answer      : answer(NAME)
    ("Ann" | D=0.7)
    ("Betty" | D=0.7)
  
  naive check : answer(F.NAME)

Query 4 (type JX antijoin):

  $ ../../examples/employee_antijoin.exe | grep -c 'D='
  9

Query 5 (type JA aggregate) classification:

  $ ../../examples/city_income.exe | grep classified
  classified as: type JA

Appendix semantics:

  $ ../../examples/appendix_semantics.exe | head -6
  single-measure semantics (the paper's): one fuzzy relation
  answer(R.X)
    ("x1" | D=1)
    ("x2" | D=0.8)
    ("x3" | D=0.9)
    ("x4" | D=0.7)
