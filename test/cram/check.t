The static analyzer as a batch linter: fsql --check prints every
diagnostic with caret underlines and exits nonzero iff any Error.

A clean corpus file passes silently:

  $ fsql --check ../../examples/queries/clean.fsql
  SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME IN
  (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age');
  no issues
  
  SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.W <= R.W);
  no issues
  
  ../../examples/queries/clean.fsql: 0 errors, 0 warnings

Warnings (FSQL030-033) are reported but do not fail the lint:

  $ fsql --check ../../examples/queries/warnings.fsql
  SELECT F.NAME FROM F WHERE F.ID = 999;
  warning[FSQL030]: predicate is always degree 0: support [999, 999] of 999 cannot meet F.ID's loaded domain [101, 104]
    --> line 1, column 28
     1 | SELECT F.NAME FROM F WHERE F.ID = 999
       |                            ^^^^^^^^^^
  1 warning
  
  SELECT F.NAME FROM F WHERE F.ID = DIST(101:0.5) WITH D >= 0.8;
  warning[FSQL031]: predicate degree can reach at most 0.5 (the height of DIST(101:0.5)), below the WITH D >= 0.8 cut — this block yields no answers
    --> line 1, column 28
     1 | SELECT F.NAME FROM F WHERE F.ID = DIST(101:0.5) WITH D >= 0.8
       |                            ^^^^^^^^^^^^^^^^^^^^
  1 warning
  
  SELECT F.NAME FROM F WHERE F.ID > 103 AND F.ID < 102;
  warning[FSQL032]: contradictory conjunction on F.ID: the combined supports admit no loaded value (degree is always 0)
    --> line 1, column 28
     1 | SELECT F.NAME FROM F WHERE F.ID > 103 AND F.ID < 102
       |                            ^^^^^^^^^^^^^^^^^^^^^^^^^
  1 warning
  
  SELECT F.NAME FROM F WHERE F.INCOME IN (SELECT M.INCOME FROM M)
  AND F.AGE IN (SELECT M.AGE FROM M);
  warning[FSQL033]: query is general nested — outside the unnestable types N/J/JX/JA/JALL, so it runs on the nested-loop interpreter
    --> line 1, column 28
     1 | SELECT F.NAME FROM F WHERE F.INCOME IN (SELECT M.INCOME FROM M)
       |                            ^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^
    hint: expect O(outer x inner) scan cost; consider rewriting the subquery into an unnestable form
  1 warning
  
  ../../examples/queries/warnings.fsql: 0 errors, 4 warnings

Errors fail with exit 1, each carrying its stable code and a hint
where a near-miss exists:

  $ fsql --check ../../examples/queries/errors.fsql
  SELECT F.NAME FROM F, NOSUCH;
  error[FSQL010]: unknown relation NOSUCH
    --> line 1, column 23
     1 | SELECT F.NAME FROM F, NOSUCH
       |                       ^^^^^^
  1 error
  
  SELECT F.NAMEE FROM F;
  error[FSQL011]: unknown attribute F.NAMEE
    --> line 1, column 8
     1 | SELECT F.NAMEE FROM F
       |        ^^^^^^^
    hint: did you mean F.NAME?
  1 error
  
  SELECT F.NAME FROM F WHERE F.AGE = 'midle age';
  error[FSQL021]: unknown linguistic term "midle age" (numeric context)
    --> line 1, column 36
     1 | SELECT F.NAME FROM F WHERE F.AGE = 'midle age'
       |                                    ^^^^^^^^^^^
    hint: did you mean "middle age"?
  1 error
  
  SELECT F.NAME FROM F WITH D >= 1.5;
  error[FSQL023]: WITH threshold 1.5 outside [0, 1]
    --> line 1, column 22
     1 | SELECT F.NAME FROM F WITH D >= 1.5
       |                      ^^^^^^^^^^^^^
  1 error
  
  SELECT FROM R;
  error[FSQL002]: expected a projection item but found FROM
    --> line 1, column 8
     1 | SELECT FROM R
       |        ^^^^
  1 error
  
  ../../examples/queries/errors.fsql: 5 errors, 0 warnings
  [1]
