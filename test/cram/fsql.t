The fsql shell over the paper's demo database, scripted end to end.

  $ cat > session.sql <<'SQL'
  > \timing
  > \d
  > SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME IN
  > (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age');
  > \shape SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.W <= R.W);
  > \strategy naive
  > SELECT F.NAME FROM F WHERE F.AGE = 'very medium young';
  > \save db
  > \load db/f.frel
  > SELECT COUNT(F.ID) FROM F;
  > \q
  > SQL
  $ fsql < session.sql
  timing off
    F(ID, NAME, AGE, INCOME)  (4 tuples, 1 pages)
    M(ID, NAME, AGE, INCOME)  (4 tuples, 1 pages)
    R(ID, X, W)  (500 tuples, 8 pages)
    S(ID, X, W)  (500 tuples, 8 pages)
  answer(NAME)
    ("Ann" | D=0.7)
    ("Betty" | D=0.7)
  (2 tuples)
  type J
  strategy set to naive
  answer(F.NAME)
    ("Ann" | D=1)
    ("Betty" | D=0.4667)
  (2 tuples)
  saved 4 relation(s) to db
  loaded F(ID, NAME, AGE, INCOME) (4 tuples)
  answer(COUNT_F.ID)
    (4 | D=1)
  (1 tuple)
