(** Unit and property tests of the fuzzy kernel: intervals, trapezoids,
    satisfaction degrees, fuzzy arithmetic, defuzzification, and the
    Definition 3.1 order. *)

open Frepro.Fuzzy

let tc = Alcotest.test_case

(* ---------- Interval ---------- *)

let interval_tests =
  [
    tc "make validates bounds" `Quick (fun () ->
        Alcotest.check_raises "lo > hi" (Invalid_argument "Interval.make: lo > hi")
          (fun () -> ignore (Interval.make 2.0 1.0)));
    tc "point is degenerate" `Quick (fun () ->
        let i = Interval.point 3.0 in
        Alcotest.(check bool) "is_point" true (Interval.is_point i);
        Alcotest.(check (float 0.0)) "width" 0.0 (Interval.width i));
    tc "overlaps / intersect" `Quick (fun () ->
        let a = Interval.make 0.0 5.0 and b = Interval.make 5.0 9.0 in
        Alcotest.(check bool) "touching intervals overlap" true
          (Interval.overlaps a b);
        let c = Interval.make 6.0 7.0 in
        Alcotest.(check bool) "disjoint" false (Interval.overlaps a c);
        Alcotest.(check bool) "intersect none" true (Interval.intersect a c = None));
    tc "hull" `Quick (fun () ->
        let h = Interval.hull (Interval.make 1.0 2.0) (Interval.make 5.0 6.0) in
        Test_util.(Alcotest.check interval) "hull" (Interval.make 1.0 6.0) h);
    tc "compare_lex is Definition 3.1" `Quick (fun () ->
        (* Example 3.1 of the paper: [20,28] < [20,35] < [30,35]. *)
        let i1 = Interval.make 30.0 35.0
        and i2 = Interval.make 20.0 28.0
        and i3 = Interval.make 20.0 35.0 in
        Alcotest.(check bool) "r2 < r3" true (Interval.compare_lex i2 i3 < 0);
        Alcotest.(check bool) "r3 < r1" true (Interval.compare_lex i3 i1 < 0));
  ]

(* ---------- Trapezoid basics ---------- *)

let mem_cases =
  tc "membership function shape" `Quick (fun () ->
      (* medium young = trap(20,25,30,35), Fig. 1 *)
      let my = Trapezoid.make 20. 25. 30. 35. in
      List.iter
        (fun (x, expected) ->
          Test_util.check_degree (Printf.sprintf "mu(%g)" x) expected
            (Trapezoid.mem my x))
        [
          (19.0, 0.0); (20.0, 0.0); (23.0, 0.6); (24.0, 0.8); (25.0, 1.0);
          (27.5, 1.0); (30.0, 1.0); (32.0, 0.6); (35.0, 0.0); (36.0, 0.0);
        ])

let crisp_cases =
  tc "crisp trapezoid" `Quick (fun () ->
      let c = Trapezoid.crisp 5.0 in
      Alcotest.(check bool) "is_crisp" true (Trapezoid.is_crisp c);
      Test_util.check_degree "mu(5)" 1.0 (Trapezoid.mem c 5.0);
      Test_util.check_degree "mu(5.1)" 0.0 (Trapezoid.mem c 5.1))

let alpha_cut_cases =
  tc "alpha cuts" `Quick (fun () ->
      let t = Trapezoid.make 0. 10. 20. 40. in
      let cut a = Option.get (Trapezoid.alpha_cut t a) in
      Test_util.(Alcotest.check interval) "0-cut = support" (Interval.make 0. 40.) (cut 0.0);
      Test_util.(Alcotest.check interval) "1-cut = core" (Interval.make 10. 20.) (cut 1.0);
      Test_util.(Alcotest.check interval) "0.5-cut" (Interval.make 5. 30.) (cut 0.5);
      Alcotest.(check bool) "above 1" true (Trapezoid.alpha_cut t 1.5 = None))

let eq_height_cases =
  tc "eq_height hand cases" `Quick (fun () ->
      let my = Trapezoid.make 20. 25. 30. 35. in
      let a35 = Trapezoid.triangle 30. 35. 40. in
      (* Fig. 1: the intersection of "medium young" and "about 35" is 0.5. *)
      Test_util.check_degree "my = about35" 0.5 (Trapezoid.eq_height my a35);
      Test_util.check_degree "symmetric" 0.5 (Trapezoid.eq_height a35 my);
      Test_util.check_degree "core overlap -> 1" 1.0
        (Trapezoid.eq_height my (Trapezoid.make 28. 29. 50. 60.));
      Test_util.check_degree "disjoint supports -> 0" 0.0
        (Trapezoid.eq_height my (Trapezoid.triangle 40. 45. 50.));
      Test_util.check_degree "touching supports -> 0" 0.0
        (Trapezoid.eq_height my (Trapezoid.triangle 35. 45. 50.));
      (* crisp against fuzzy: mu at the point *)
      Test_util.check_degree "crisp 24 vs my" 0.8
        (Trapezoid.eq_height (Trapezoid.crisp 24.0) my);
      (* vertical edge case *)
      let vert = Trapezoid.make 10. 10. 10. 10. in
      Test_util.check_degree "two equal crisp" 1.0
        (Trapezoid.eq_height vert (Trapezoid.crisp 10.0)))

let ge_height_cases =
  tc "ge/gt/le/lt heights" `Quick (fun () ->
      let u = Trapezoid.triangle 0. 5. 10. and v = Trapezoid.triangle 8. 13. 18. in
      (* Poss(u >= v): u's falling edge [5,10] vs v's rising edge [8,13]:
         crossing height = (10 - 8) / ((10-5) + (13-8)) = 0.2. *)
      Test_util.check_degree "u >= v" 0.2 (Trapezoid.ge_height u v);
      Test_util.check_degree "v >= u" 1.0 (Trapezoid.ge_height v u);
      Test_util.check_degree "u <= v" 1.0 (Trapezoid.le_height u v);
      (* crisp strictness *)
      let c5 = Trapezoid.crisp 5.0 in
      Test_util.check_degree "5 > 5" 0.0 (Trapezoid.gt_height c5 (Trapezoid.crisp 5.0));
      Test_util.check_degree "5 >= 5" 1.0 (Trapezoid.ge_height c5 (Trapezoid.crisp 5.0));
      Test_util.check_degree "5 > 4" 1.0 (Trapezoid.gt_height c5 (Trapezoid.crisp 4.0));
      (* ne *)
      Test_util.check_degree "5 <> 5" 0.0 (Trapezoid.ne_height c5 (Trapezoid.crisp 5.0));
      Test_util.check_degree "fuzzy <> fuzzy" 1.0 (Trapezoid.ne_height u v))

let arith_cases =
  tc "fuzzy arithmetic on cuts" `Quick (fun () ->
      let x = Trapezoid.make 1. 2. 3. 4. and y = Trapezoid.make 10. 20. 30. 40. in
      let s = Trapezoid.add x y in
      Alcotest.(check bool) "add" true (Trapezoid.equal s (Trapezoid.make 11. 22. 33. 44.));
      let d = Trapezoid.sub y x in
      Alcotest.(check bool) "sub" true (Trapezoid.equal d (Trapezoid.make 6. 17. 28. 39.));
      let m = Trapezoid.mul x y in
      Alcotest.(check bool) "mul" true (Trapezoid.equal m (Trapezoid.make 10. 40. 90. 160.));
      (match Trapezoid.div y x with
      | Some q ->
          (* Expected cuts: 0-cut [10,40]*[1/4,1] = [2.5,40], 1-cut
             [20,30]*[1/3,1/2] = [20/3,15]; compare up to rounding. *)
          let close a b = Float.abs (a -. b) <= 1e-12 in
          let sup = Trapezoid.support q and core = Trapezoid.core q in
          Alcotest.(check bool) "div cuts" true
            (close (Interval.lo sup) 2.5 && close (Interval.hi sup) 40.
            && close (Interval.lo core) (20. /. 3.)
            && close (Interval.hi core) 15.)
      | None -> Alcotest.fail "div should be defined");
      Alcotest.(check bool) "div by zero-spanning" true
        (Trapezoid.div y (Trapezoid.make (-1.) 0. 0. 1.) = None);
      let n = Trapezoid.scale x (-2.0) in
      Alcotest.(check bool) "negative scale mirrors" true
        (Trapezoid.equal n (Trapezoid.make (-8.) (-6.) (-4.) (-2.))))

(* ---------- property tests: analytic vs oracle ---------- *)

let trap_gen =
  QCheck.Gen.(
    let pt = float_bound_inclusive 100.0 in
    map
      (fun (a, b, c, d) ->
        match List.sort Float.compare [ a; b; c; d ] with
        | [ a; b; c; d ] -> Trapezoid.make a b c d
        | _ -> assert false)
      (quad pt pt pt pt))

let arb_trap = QCheck.make ~print:(Format.asprintf "%a" Trapezoid.pp) trap_gen

let close a b = Float.abs (a -. b) <= 1e-9

let prop_eq_matches_oracle =
  QCheck.Test.make ~count:500 ~name:"analytic eq = breakpoint oracle"
    (QCheck.pair arb_trap arb_trap) (fun (u, v) ->
      let pu = Possibility.trap u and pv = Possibility.trap v in
      close
        (Fuzzy_compare.degree Fuzzy_compare.Eq pu pv)
        (Fuzzy_compare.Oracle.degree Fuzzy_compare.Eq pu pv))

let prop_ge_matches_oracle =
  QCheck.Test.make ~count:500 ~name:"analytic ge = breakpoint oracle"
    (QCheck.pair arb_trap arb_trap) (fun (u, v) ->
      let pu = Possibility.trap u and pv = Possibility.trap v in
      close
        (Fuzzy_compare.degree Fuzzy_compare.Ge pu pv)
        (Fuzzy_compare.Oracle.degree Fuzzy_compare.Ge pu pv))

let prop_eq_symmetric =
  QCheck.Test.make ~count:500 ~name:"eq is symmetric"
    (QCheck.pair arb_trap arb_trap) (fun (u, v) ->
      close (Trapezoid.eq_height u v) (Trapezoid.eq_height v u))

let prop_ge_le_dual =
  QCheck.Test.make ~count:500 ~name:"ge(u,v) = le(v,u)"
    (QCheck.pair arb_trap arb_trap) (fun (u, v) ->
      close (Trapezoid.ge_height u v) (Trapezoid.le_height v u))

let prop_total_order_covers =
  QCheck.Test.make ~count:500 ~name:"max(ge(u,v), ge(v,u)) = 1"
    (QCheck.pair arb_trap arb_trap) (fun (u, v) ->
      (* For any two normal convex distributions, one direction of the
         comparison is fully possible. *)
      close 1.0 (Float.max (Trapezoid.ge_height u v) (Trapezoid.ge_height v u)))

let prop_eq_le_min_ge =
  QCheck.Test.make ~count:500 ~name:"eq <= min(ge, le)"
    (QCheck.pair arb_trap arb_trap) (fun (u, v) ->
      Trapezoid.eq_height u v
      <= Float.min (Trapezoid.ge_height u v) (Trapezoid.le_height u v) +. 1e-9)

let prop_add_support =
  QCheck.Test.make ~count:300 ~name:"support(add) = support sums"
    (QCheck.pair arb_trap arb_trap) (fun (u, v) ->
      let s = Trapezoid.add u v in
      close
        (Interval.lo (Trapezoid.support s))
        (Interval.lo (Trapezoid.support u) +. Interval.lo (Trapezoid.support v))
      && close
           (Interval.hi (Trapezoid.support s))
           (Interval.hi (Trapezoid.support u) +. Interval.hi (Trapezoid.support v)))

let prop_alpha_cut_nested =
  QCheck.Test.make ~count:300 ~name:"alpha cuts are nested"
    (QCheck.pair arb_trap (QCheck.float_bound_inclusive 1.0)) (fun (t, a) ->
      let lower = Option.get (Trapezoid.alpha_cut t (a /. 2.0)) in
      let higher = Option.get (Trapezoid.alpha_cut t a) in
      Interval.lo lower <= Interval.lo higher +. 1e-9
      && Interval.hi higher <= Interval.hi lower +. 1e-9)

(* ---------- discrete distributions ---------- *)

let discrete_cases =
  tc "discrete distributions" `Quick (fun () ->
      (* The Appendix example: 1/y1 + 0.8/y2. *)
      let s = Possibility.discrete [ (1.0, 1.0); (2.0, 0.8) ] in
      Test_util.check_degree "mem y1" 1.0 (Possibility.mem s 1.0);
      Test_util.check_degree "mem y2" 0.8 (Possibility.mem s 2.0);
      Test_util.check_degree "mem other" 0.0 (Possibility.mem s 1.5);
      let y1 = Possibility.crisp 1.0 and y2 = Possibility.crisp 2.0 in
      Test_util.check_degree "d(y1 = S)" 1.0 (Fuzzy_compare.degree Fuzzy_compare.Eq y1 s);
      Test_util.check_degree "d(y2 = S)" 0.8 (Fuzzy_compare.degree Fuzzy_compare.Eq y2 s);
      (* order comparisons *)
      Test_util.check_degree "d(S >= 2)" 0.8 (Fuzzy_compare.degree Fuzzy_compare.Ge s y2);
      Test_util.check_degree "d(S >= 1)" 1.0 (Fuzzy_compare.degree Fuzzy_compare.Ge s y1);
      Test_util.check_degree "d(S > 2)" 0.0 (Fuzzy_compare.degree Fuzzy_compare.Gt s y2);
      (* mixed with a trapezoid *)
      let t = Possibility.trap (Trapezoid.make 0.0 1.5 1.5 3.0) in
      Test_util.check_degree "d(S = T)" (2.0 /. 3.0)
        (Fuzzy_compare.degree Fuzzy_compare.Eq s t);
      Test_util.check_degree "d(T >= S)" 1.0 (Fuzzy_compare.degree Fuzzy_compare.Ge t s);
      (* normalisation: duplicate values merge with max *)
      match Possibility.discrete [ (1.0, 0.3); (1.0, 0.6) ] with
      | Possibility.Discrete [ (1.0, 0.6) ] -> ()
      | p -> Alcotest.failf "bad normalisation: %a" Possibility.pp p)

let discrete_invalid =
  tc "discrete rejects empty and invalid" `Quick (fun () ->
      Alcotest.(check bool) "raises on empty" true
        (try ignore (Possibility.discrete [ (1.0, 0.0) ]); false
         with Invalid_argument _ -> true))

(* ---------- similarity relations ---------- *)

let similarity_cases =
  tc "similarity relation comparator" `Quick (fun () ->
      (* A tolerance relation: fully similar within 1, fading to 0 at 3. *)
      let near x y =
        let d = Float.abs (x -. y) in
        if d <= 1.0 then 1.0 else Float.max 0.0 ((3.0 -. d) /. 2.0)
      in
      let a = Possibility.crisp 10.0 and b = Possibility.crisp 12.0 in
      Test_util.check_degree "crisp near" 0.5 (Fuzzy_compare.similarity near a b);
      let c = Possibility.discrete [ (10.0, 1.0); (11.5, 0.4) ] in
      Test_util.check_degree "discrete near" 0.5
        (Fuzzy_compare.similarity near c b))

(* ---------- defuzzification ---------- *)

let defuzz_cases =
  tc "defuzzification" `Quick (fun () ->
      let t = Possibility.trap (Trapezoid.make 0. 10. 20. 30.) in
      Alcotest.(check (float 1e-9)) "core center" 15.0 (Defuzz.core_center t);
      Alcotest.(check (float 1e-9)) "symmetric centroid" 15.0 (Defuzz.centroid t);
      let skew = Possibility.trap (Trapezoid.make 0. 0. 0. 30.) in
      Alcotest.(check (float 1e-9)) "skewed centroid" 10.0 (Defuzz.centroid skew);
      let disc = Possibility.discrete [ (0.0, 1.0); (10.0, 1.0); (5.0, 0.2) ] in
      Alcotest.(check (float 1e-9)) "discrete core center" 5.0 (Defuzz.core_center disc);
      Alcotest.(check (float 1e-9)) "crisp centroid" 7.0
        (Defuzz.centroid (Possibility.crisp 7.0)))

(* ---------- tnorms ---------- *)

let tnorm_cases =
  tc "t-norm families" `Quick (fun () ->
      List.iter
        (fun t ->
          Test_util.check_degree (t.Tnorm.name ^ " conj unit") 0.7 (t.Tnorm.conj 0.7 1.0);
          Test_util.check_degree (t.Tnorm.name ^ " disj unit") 0.7 (t.Tnorm.disj 0.7 0.0);
          Test_util.check_degree (t.Tnorm.name ^ " conj zero") 0.0 (t.Tnorm.conj 0.7 0.0))
        [ Tnorm.zadeh; Tnorm.product; Tnorm.lukasiewicz ];
      Test_util.check_degree "product conj" 0.35 (Tnorm.product.Tnorm.conj 0.7 0.5);
      Test_util.check_degree "lukasiewicz conj" 0.2
        (Tnorm.lukasiewicz.Tnorm.conj 0.7 0.5))

(* ---------- fuzzy arithmetic on possibilities ---------- *)

let poss_arith_cases =
  tc "possibility arithmetic" `Quick (fun () ->
      let d1 = Possibility.discrete [ (1.0, 1.0); (2.0, 0.5) ] in
      let d2 = Possibility.discrete [ (10.0, 0.8) ] in
      (match Fuzzy_arith.add d1 d2 with
      | Possibility.Discrete [ (11.0, 0.8); (12.0, 0.5) ] -> ()
      | p -> Alcotest.failf "bad discrete add: %a" Possibility.pp p);
      (* crisp trapezoid mixes with discrete *)
      (match Fuzzy_arith.add (Possibility.crisp 1.0) d2 with
      | Possibility.Discrete [ (11.0, 0.8) ] -> ()
      | p -> Alcotest.failf "bad mixed add: %a" Possibility.pp p);
      (* non-crisp trapezoid with discrete is unsupported *)
      Alcotest.(check bool) "unsupported mix" true
        (try
           ignore (Fuzzy_arith.add (Possibility.triangle 0. 1. 2.) d2);
           false
         with Fuzzy_arith.Unsupported _ -> true);
      (* sum / avg *)
      (match Fuzzy_arith.avg [ Possibility.crisp 10.0; Possibility.crisp 20.0 ] with
      | Some p ->
          Alcotest.(check (float 1e-9)) "avg" 15.0 (Defuzz.core_center p)
      | None -> Alcotest.fail "avg of nonempty");
      Alcotest.(check bool) "sum of empty is NULL" true (Fuzzy_arith.sum [] = None))

(* ---------- terms & plotting ---------- *)

let term_cases =
  tc "paper term dictionary reproduces every printed degree" `Quick (fun () ->
      let g n = Option.get (Term.lookup Term.paper n) in
      let d op a b = Fuzzy_compare.degree op a b in
      let eq = Fuzzy_compare.Eq in
      Test_util.check_degree "about35 = medium young" 0.5 (d eq (g "about 35") (g "medium young"));
      Test_util.check_degree "middle age = medium young" 0.7 (d eq (g "middle age") (g "medium young"));
      Test_util.check_degree "about50 = middle age" 0.4 (d eq (g "about 50") (g "middle age"));
      Test_util.check_degree "about29 = middle age" 0.0 (d eq (g "about 29") (g "middle age"));
      Test_util.check_degree "24 = middle age" 0.0 (d eq (Possibility.crisp 24.) (g "middle age"));
      Test_util.check_degree "24 = medium young" 0.8 (d eq (Possibility.crisp 24.) (g "medium young"));
      Test_util.check_degree "about60K = high" 0.3 (d eq (g "about 60K") (g "high"));
      Test_util.check_degree "about60K = about40K" 0.0 (d eq (g "about 60K") (g "about 40K"));
      Test_util.check_degree "medium high = high" 0.7 (d eq (g "medium high") (g "high"));
      Test_util.check_degree "medium high = about40K" 0.0 (d eq (g "medium high") (g "about 40K"));
      Test_util.check_degree "about50 = medium young" 0.0 (d eq (g "about 50") (g "medium young")))

let term_lookup_cases =
  tc "term lookup is case/space insensitive; registration shadows" `Quick
    (fun () ->
      Alcotest.(check bool) "case" true (Term.lookup Term.paper "Medium Young" <> None);
      Alcotest.(check bool) "trim" true (Term.lookup Term.paper "  high " <> None);
      Alcotest.(check bool) "missing" true (Term.lookup Term.paper "ancient" = None);
      let t = Term.register Term.paper "high" (Possibility.crisp 1.0) in
      match Term.lookup t "high" with
      | Some p -> Alcotest.(check bool) "shadowed" true (Possibility.is_crisp p)
      | None -> Alcotest.fail "lookup after register")

let plot_cases =
  tc "ASCII plot renders" `Quick (fun () ->
      let g n = Option.get (Term.lookup Term.paper n) in
      let s = Term.plot [ ("medium young", g "medium young"); ("about 35", g "about 35") ] in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "mentions label" true (contains s "medium young");
      Alcotest.(check bool) "has axis" true (contains s "0.5 |"))

let suites =
  [
    ("fuzzy.interval", interval_tests);
    ( "fuzzy.trapezoid",
      [ mem_cases; crisp_cases; alpha_cut_cases; eq_height_cases;
        ge_height_cases; arith_cases ] );
    ( "fuzzy.properties",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_eq_matches_oracle; prop_ge_matches_oracle; prop_eq_symmetric;
          prop_ge_le_dual; prop_total_order_covers; prop_eq_le_min_ge;
          prop_add_support; prop_alpha_cut_nested;
        ] );
    ( "fuzzy.distributions",
      [ discrete_cases; discrete_invalid; similarity_cases; defuzz_cases;
        tnorm_cases; poss_arith_cases ] );
    ("fuzzy.terms", [ term_cases; term_lookup_cases; plot_cases ]);
  ]
