(** Crash-recovery chaos harness: a forked writer process loads durable
    batches and is SIGKILLed mid-workload; the parent then runs restart
    recovery on the data directory and proves three things per fault
    seed:

    - {b durability}: every batch the child acknowledged (progress file
      written with fsync {e after} [Env.commit] returned) is present
      after recovery;
    - {b atomicity + determinism}: the recovered relation is an exact
      prefix of the deterministic insert sequence, bit-identical — the
      order-independent answer checksum of the recovered heap equals the
      checksum of the same prefix rebuilt in memory;
    - {b torn-page detection}: zero manifest-live pages fail trailer
      validation after recovery ({!Storage.Recovery.verify_pages}).

    SIGKILL (not SIGTERM) means the child gets no chance to flush or
    close anything: whatever the crash left on the device — torn WAL
    tail, half-written data pages — is what recovery must cope with.
    One ["recovery_chaos"] row per seed lands in BENCH_results.json. *)

open Frepro
open Frepro.Storage
open Harness

let section title = Format.printf "@.==== %s ====@." title
let note fmt = Format.printf fmt

let batch_size = 17

let chaos_schema =
  Relational.Schema.make ~name:"C"
    [ ("ID", Relational.Schema.TNum); ("X", Relational.Schema.TNum) ]

(* Tuple [i] of the workload is a pure function of (seed, i): parent and
   child compute identical sequences without sharing anything. *)
let tuple_at ~seed i =
  let rng = Random.State.make [| 0xC4A5; seed; i |] in
  Relational.Ftuple.make
    [| Relational.Value.Int i;
       Relational.Value.crisp_num (Random.State.float rng 1000.0) |]
    (0.125 *. float_of_int (1 + Random.State.int rng 8))

let progress_file dir = Filename.concat dir "progress.txt"

(* Atomically record "batches <= k are durable": tmp + fsync + rename,
   written only after [Env.commit] has returned. A crash between the
   commit and the rename under-reports progress, which is the safe
   direction for the durability check. *)
let write_progress dir k =
  let tmp = progress_file dir ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let s = string_of_int k ^ "\n" in
  ignore (Unix.write_substring fd s 0 (String.length s));
  Unix.fsync fd;
  Unix.close fd;
  Unix.rename tmp (progress_file dir)

let read_progress dir =
  match open_in (progress_file dir) with
  | ic ->
      let k = try int_of_string (String.trim (input_line ic)) with _ -> 0 in
      close_in ic;
      k
  | exception Sys_error _ -> 0

(* The child: insert-commit-acknowledge forever until SIGKILLed. Exits
   via [Unix._exit] on any error so the parent's at_exit/buffers never
   run twice. *)
let child_workload ~seed dir =
  match
    let env =
      Env.open_durable ~dir ~page_size:2048 ~pool_pages:4096
        ~wal_sync:Wal.Always ()
    in
    let rel = Relational.Relation.create ~durable:true env chaos_schema in
    let k = ref 0 in
    while true do
      let start = !k * batch_size in
      for i = start to start + batch_size - 1 do
        Relational.Relation.insert rel (tuple_at ~seed i)
      done;
      Env.commit env;
      incr k;
      write_progress dir !k
    done
  with
  | () -> Unix._exit 0
  | exception _ -> Unix._exit 1

let expected_checksum ~seed n =
  let env = Env.create () in
  let rel =
    Relational.Relation.of_list env chaos_schema
      (List.init n (fun i -> tuple_at ~seed i))
  in
  Harness.answer_checksum rel

let run_seed ~seed =
  with_temp_dir (fun dir ->
      let pid = Unix.fork () in
      if pid = 0 then child_workload ~seed dir;
      (* Wait for the first acknowledged batch so the kill always lands
         mid-workload, then fire after a seed-derived delay. *)
      let deadline = Unix.gettimeofday () +. 10.0 in
      while
        (not (Sys.file_exists (progress_file dir)))
        && Unix.gettimeofday () < deadline
      do
        Unix.sleepf 0.005
      done;
      let kill_after = 0.03 +. (0.04 *. float_of_int (seed mod 5)) in
      Unix.sleepf kill_after;
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      let committed = read_progress dir in
      let t0 = Unix.gettimeofday () in
      let env = Env.open_durable ~dir () in
      let recover_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
      let torn =
        match (Env.wal env, Disk.as_real env.Env.disk) with
        | Some wal, Some disk -> List.length (Recovery.verify_pages wal disk)
        | _ -> -1
      in
      let recovered_tuples, checksum =
        match
          Relational.Catalog.find (Relational.Catalog.load_durable env) "C"
        with
        | Some rel ->
            (Relational.Relation.cardinality rel, Harness.answer_checksum rel)
        | None -> (0, "")
      in
      Env.close env;
      let matches =
        recovered_tuples >= committed * batch_size
        && (recovered_tuples = 0 && checksum = ""
           || checksum = expected_checksum ~seed recovered_tuples)
      in
      {
        rc_seed = seed;
        rc_kill_after_s = kill_after;
        rc_committed_batches = committed;
        rc_recovered_tuples = recovered_tuples;
        rc_checksum = checksum;
        rc_match = matches;
        rc_torn_undetected = torn;
        rc_recover_ms = recover_ms;
      })

let run (cfg : Harness.config) =
  section "Recovery chaos - SIGKILL a durable writer, recover, verify";
  note "child commits %d-tuple batches (wal-sync always) and fsync-acks@."
    batch_size;
  note "each; parent SIGKILLs mid-workload, recovers the directory, and@.";
  note "checks the recovered heap is a bit-identical committed prefix@.";
  note "with zero undetected torn pages@.@.";
  Format.printf "%-6s | %10s | %10s | %10s | %12s | %6s | %6s@." "seed"
    "kill (s)" "committed" "recovered" "recover(ms)" "match" "torn";
  hr Format.std_formatter 76;
  let failures = ref 0 in
  List.iter
    (fun seed ->
      let row = run_seed ~seed in
      rchaos_results := row :: !rchaos_results;
      if not (row.rc_match && row.rc_torn_undetected = 0) then incr failures;
      Format.printf "%-6d | %10.3f | %10d | %10d | %12.2f | %6b | %6d@."
        row.rc_seed row.rc_kill_after_s row.rc_committed_batches
        row.rc_recovered_tuples row.rc_recover_ms row.rc_match
        row.rc_torn_undetected)
    [ cfg.seed; cfg.seed + 1; cfg.seed + 2 ];
  if !failures > 0 then
    failwith
      (Printf.sprintf "recovery chaos: %d of 3 seeds failed verification"
         !failures);
  note "@.all seeds recovered bit-identical committed prefixes@."
