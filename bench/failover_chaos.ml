(** HA failover chaos harness: a forked primary process loads durable
    batches and streams its WAL to an in-process replica; the primary is
    SIGKILLed mid-load, the replica is promoted over the wire, retrying
    clients are re-pointed at it, and the harness proves, per seed:

    - {b zero acknowledged-commit loss}: the child acknowledges a batch
      (fsync-ack progress file) only after {e both} [Env.commit] returned
      {e and} the replica acked applying through the batch's commit LSN
      (semi-synchronous replication via
      {!Server.Replication.Sender.wait_applied}) — so every acknowledged
      batch must be served by the promoted replica;
    - {b bit-identical committed prefix}: the promoted replica's answer
      to a full scan, checksummed over the wire rows (printed values +
      raw degree bits), equals the checksum of the same prefix rebuilt
      in the fault-free in-memory engine;
    - {b fencing, both directions}: after promotion (epoch 2), a zombie
      sender stood up on the dead primary's directory (epoch 1) refuses
      an epoch-2 subscriber ([Rep_fence], its [fenced] counter moves)
      and the epoch-2 replica rejects the stale stream
      ([fenced_rejects] moves) — observable in the row and in the
      schedule dump, and [replication_epoch] is scraped from the
      promoted daemon's metrics.

    One ["failover_chaos"] row per seed lands in BENCH_results.json and
    the full event schedule in
    [bench/artifacts/failover_schedule.json]. *)

open Frepro
open Frepro.Storage
open Harness
module Replication = Server.Replication

let section title = Format.printf "@.==== %s ====@." title
let note fmt = Format.printf fmt
let addr_of port = "127.0.0.1:" ^ string_of_int port
let port_file dir = Filename.concat dir "port.txt"

let write_port dir port =
  let tmp = port_file dir ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let s = string_of_int port ^ "\n" in
  ignore (Unix.write_substring fd s 0 (String.length s));
  Unix.fsync fd;
  Unix.close fd;
  Unix.rename tmp (port_file dir)

let read_port dir =
  match open_in (port_file dir) with
  | ic ->
      let p = try int_of_string (String.trim (input_line ic)) with _ -> 0 in
      close_in ic;
      p
  | exception Sys_error _ -> 0

(* The child: a durable primary streaming its WAL. Each batch is
   acknowledged (progress file) only after a replica has applied and
   fsynced through the batch's commit LSN — the semi-sync discipline
   that makes "zero acked-commit loss" checkable rather than probable.
   Runs until SIGKILLed; exits via [Unix._exit] so the parent's at_exit
   never runs twice. *)
let child_primary ~seed dir =
  match
    let env =
      Env.open_durable ~dir ~page_size:2048 ~pool_pages:4096
        ~wal_sync:Wal.Always ()
    in
    let rel =
      Relational.Relation.create ~durable:true env Recovery_chaos.chaos_schema
    in
    Env.commit env;
    let sender = Replication.Sender.create ~env in
    let port = Replication.Sender.listen ~port:0 sender in
    write_port dir port;
    let wal = match Env.wal env with Some w -> w | None -> assert false in
    let k = ref 0 in
    while true do
      let start = !k * Recovery_chaos.batch_size in
      for i = start to start + Recovery_chaos.batch_size - 1 do
        Relational.Relation.insert rel (Recovery_chaos.tuple_at ~seed i)
      done;
      Env.commit env;
      if
        Replication.Sender.wait_applied sender ~lsn:(Wal.committed_end wal)
          ~timeout_s:60.0
      then begin
        incr k;
        Recovery_chaos.write_progress dir !k
      end
      else Unix._exit 3
    done
  with
  | () -> Unix._exit 0
  | exception _ -> Unix._exit 1

let durable_setup env catalog =
  let durable = Relational.Catalog.load_durable env in
  List.iter
    (fun name ->
      match Relational.Catalog.find durable name with
      | Some rel -> Relational.Catalog.add catalog rel
      | None -> ())
    (Relational.Catalog.names durable)

(* Both attributes plus the degree bits travel on the wire, and IDs are
   unique, so the order-independent checksum of the answer rows equals
   [Harness.answer_checksum] of the underlying relation. *)
let scan_sql = "SELECT C.ID, C.X FROM C WHERE C.ID >= 0"

let query_scan client =
  let retry = Some { Server.Retry.default with max_attempts = 10 } in
  match Server.Client.query ?retry ~deadline_ms:10000 client scan_sql with
  | Server.Client.Answer { rows; _ } ->
      let wire_rows =
        List.map
          (fun r ->
            ( r.Server.Client.values,
              Int64.bits_of_float r.Server.Client.degree ))
          rows
      in
      Some (List.length rows, Harness.checksum_of_rows wire_rows)
  | _ -> None

type seed_events = {
  mutable ev : string list;  (** reversed (ts, event) lines *)
  t0 : float;
}

let event evs fmt =
  Printf.ksprintf
    (fun s ->
      evs.ev <-
        Printf.sprintf "{\"t_s\": %.3f, \"event\": \"%s\"}"
          (Unix.gettimeofday () -. evs.t0)
          (json_escape s)
        :: evs.ev)
    fmt

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let run_seed ~seed evs =
  with_temp_dir (fun pdir ->
      with_temp_dir (fun rdir ->
          with_temp_dir (fun r2dir ->
              let t0 = Unix.gettimeofday () in
              let pid = Unix.fork () in
              if pid = 0 then child_primary ~seed pdir;
              event evs "seed %d: primary forked (pid %d)" seed pid;
              (* Wait for the child's replication listener. *)
              let deadline = Unix.gettimeofday () +. 20.0 in
              while read_port pdir = 0 && Unix.gettimeofday () < deadline do
                Unix.sleepf 0.005
              done;
              let pport = read_port pdir in
              if pport = 0 then failwith "primary never published its port";
              let replica =
                Replication.Replica.create ~dir:rdir ~primary:(addr_of pport)
                  ()
              in
              Replication.Replica.start replica;
              if not (Replication.Replica.wait_synced ~timeout_s:30.0 replica)
              then failwith "replica failed its initial catch-up";
              event evs "replica synced (snapshot + tail) from %s"
                (addr_of pport);
              let daemon =
                Server.Daemon.start ~workers:2 ~queue_capacity:16
                  ~default_deadline_ms:10000 ~replica ~max_staleness_ms:5000
                  ~make_env:(fun ~pool_pages ->
                    Env.open_durable ~dir:rdir ~readonly:true ~pool_pages ())
                  ~setup:durable_setup ()
              in
              let dport = Server.Daemon.port daemon in
              event evs "replica daemon serving read-only on %s"
                (addr_of dport);
              let client = ref (Server.Client.connect ~port:dport ()) in
              let queries_ok = ref 0 in
              (* Clients query the replica throughout the failover. *)
              (match query_scan !client with
              | Some _ -> incr queries_ok
              | None -> ());
              (* Let the primary ack at least 2 semi-sync batches so the
                 kill always lands mid-load with real acked history. *)
              let deadline = Unix.gettimeofday () +. 30.0 in
              while
                Recovery_chaos.read_progress pdir < 2
                && Unix.gettimeofday () < deadline
              do
                Unix.sleepf 0.005
              done;
              if Recovery_chaos.read_progress pdir < 2 then
                failwith "primary never acked 2 semi-sync batches";
              let kill_after = 0.03 +. (0.04 *. float_of_int (seed mod 5)) in
              Unix.sleepf kill_after;
              Unix.kill pid Sys.sigkill;
              ignore (Unix.waitpid [] pid);
              let acked = Recovery_chaos.read_progress pdir in
              event evs "primary SIGKILLed %.3fs after batch 2 (%d acked)"
                kill_after acked;
              (* Promote over the wire, exactly as `fsql \promote` does. *)
              let epoch =
                match Server.Client.promote !client with
                | Ok e -> e
                | Error m -> failwith ("promote refused: " ^ m)
              in
              event evs "replica promoted; epoch %d" epoch;
              (* Re-point the retrying client at the promoted primary
                 (fresh connection) and keep querying. *)
              Server.Client.close !client;
              client := Server.Client.connect ~port:dport ();
              let recovered, wire_checksum =
                match query_scan !client with
                | Some (n, sum) ->
                    incr queries_ok;
                    (n, sum)
                | None -> (0, "")
              in
              (match query_scan !client with
              | Some _ -> incr queries_ok
              | None -> ());
              let metrics_json = Server.Client.metrics_json !client in
              let epoch_in_metrics =
                contains ~needle:"replication_epoch" metrics_json
              in
              event evs
                "post-failover scan: %d tuples, checksum %s, \
                 replication_epoch %s in /metrics"
                recovered wire_checksum
                (if epoch_in_metrics then "present" else "MISSING");
              (* Fencing drill: chain a second replica off the promoted
                 primary so an epoch-2 directory exists, then point it at
                 a zombie sender on the dead primary's epoch-1 files. *)
              let r2 =
                Replication.Replica.create ~dir:r2dir
                  ~primary:(addr_of dport) ()
              in
              Replication.Replica.start r2;
              if not (Replication.Replica.wait_synced ~timeout_s:30.0 r2) then
                failwith "chained replica failed to sync off the promoted \
                          primary";
              Replication.Replica.stop r2;
              let zombie = Replication.Sender.create_for_dir ~dir:pdir in
              let zport = Replication.Sender.listen ~port:0 zombie in
              event evs "zombie sender up on old primary dir (epoch %d)"
                (Replication.Sender.epoch zombie);
              let r3 =
                Replication.Replica.create ~dir:r2dir
                  ~primary:(addr_of zport) ()
              in
              Replication.Replica.start r3;
              let deadline = Unix.gettimeofday () +. 10.0 in
              while
                Replication.Replica.fenced_rejects r3 = 0
                && Unix.gettimeofday () < deadline
              do
                Unix.sleepf 0.01
              done;
              Replication.Replica.stop r3;
              let fenced_sender = Replication.Sender.fenced zombie in
              let fenced_replica = Replication.Replica.fenced_rejects r3 in
              Replication.Sender.stop zombie;
              event evs "fence fired: zombie refused %d, replica rejected %d"
                fenced_sender fenced_replica;
              Server.Client.close !client;
              Server.Daemon.stop daemon;
              (match Server.Daemon.sender daemon with
              | Some s -> Replication.Sender.stop s
              | None -> ());
              Replication.Replica.stop replica;
              let expected =
                Recovery_chaos.expected_checksum ~seed recovered
              in
              let matches =
                recovered >= acked * Recovery_chaos.batch_size
                && recovered mod Recovery_chaos.batch_size = 0
                && wire_checksum = expected && epoch_in_metrics
              in
              {
                f_seed = seed;
                f_kill_after_s = kill_after;
                f_acked_batches = acked;
                f_recovered_tuples = recovered;
                f_checksum = wire_checksum;
                f_match = matches;
                f_epoch = epoch;
                f_fenced_sender = fenced_sender;
                f_fenced_replica = fenced_replica;
                f_queries_ok = !queries_ok;
                f_duration_s = Unix.gettimeofday () -. t0;
              })))

let write_schedule path rows evs_per_seed =
  (try Unix.mkdir (Filename.dirname path) 0o755
   with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ());
  let oc = open_out path in
  output_string oc "[\n";
  let n = List.length rows in
  List.iteri
    (fun i (row, evs) ->
      Printf.fprintf oc
        "  {\"seed\": %d, \"kill_after_s\": %.3f, \"acked_batches\": %d, \
         \"recovered_tuples\": %d, \"epoch\": %d, \"fenced_sender\": %d, \
         \"fenced_replica\": %d, \"match\": %b, \"events\": [\n    %s\n  \
         ]}%s\n"
        row.f_seed row.f_kill_after_s row.f_acked_batches
        row.f_recovered_tuples row.f_epoch row.f_fenced_sender
        row.f_fenced_replica row.f_match
        (String.concat ",\n    " (List.rev evs.ev))
        (if i = n - 1 then "" else ","))
    (List.combine rows evs_per_seed);
  output_string oc "]\n";
  close_out oc

let run (cfg : Harness.config) =
  section "Failover chaos - SIGKILL the primary, promote the replica";
  note "child primary commits %d-tuple batches (wal-sync always) and acks@."
    Recovery_chaos.batch_size;
  note "each only after the replica applied it (semi-sync); parent SIGKILLs@.";
  note "the primary mid-load, promotes the replica over the wire, re-points@.";
  note "retrying clients, and checks zero acked-commit loss, a bit-identical@.";
  note "committed-prefix checksum, and both directions of the epoch fence@.@.";
  Format.printf "%-6s | %9s | %6s | %9s | %6s | %6s | %6s | %6s@." "seed"
    "kill (s)" "acked" "recovered" "epoch" "fence>" "fence<" "match";
  hr Format.std_formatter 76;
  let failures = ref 0 in
  let rows_and_events =
    List.map
      (fun seed ->
        let evs = { ev = []; t0 = Unix.gettimeofday () } in
        let row = run_seed ~seed evs in
        failover_results := row :: !failover_results;
        if
          not
            (row.f_match && row.f_epoch = 2 && row.f_fenced_sender >= 1
           && row.f_fenced_replica >= 1)
        then incr failures;
        Format.printf "%-6d | %9.3f | %6d | %9d | %6d | %6d | %6d | %6b@."
          row.f_seed row.f_kill_after_s row.f_acked_batches
          row.f_recovered_tuples row.f_epoch row.f_fenced_sender
          row.f_fenced_replica row.f_match;
        (row, evs))
      [ cfg.seed; cfg.seed + 1; cfg.seed + 2 ]
  in
  let schedule = Filename.concat "bench/artifacts" "failover_schedule.json" in
  (try
     write_schedule schedule (List.map fst rows_and_events)
       (List.map snd rows_and_events);
     note "@.schedule dump written to %s@." schedule
   with Sys_error m -> note "@.(schedule dump skipped: %s)@." m);
  if !failures > 0 then
    failwith
      (Printf.sprintf "failover chaos: %d of 3 seeds failed verification"
         !failures);
  note "zero acked-commit loss; promoted replicas served bit-identical@.";
  note "committed prefixes; stale primaries were fenced on both sides@."
