(** Chaos harness: closed-loop clients against an in-process fsqld whose
    workers run under deterministic fault injection.

    Every (fault seed, probability) cell arms reads, writes, allocation
    and torn-write faults on each worker's storage plus occasional latency
    spikes, then fires a fixed number of queries through retrying clients.
    The invariants checked are the ISSUE's acceptance criteria, not
    throughput:

    - every query that {e does} complete returns an answer bit-identical
      to the fault-free sequential engine (degrees compared as IEEE-754
      bits);
    - the daemon never crashes, and after a full drain its books balance —
      [accepted = completed + cancelled + failed + failed_transient] — so
      no worker leaked a query;
    - the fault/retry/breaker counters land in the metrics registry and in
      [BENCH_results.json].

    The full schedule (seeds, specs, per-cell outcomes) is also dumped to
    [bench/artifacts/chaos_schedule.json] so a failing CI run can be
    replayed locally. *)

open Frepro

let queries = ref 200 (* per cell; override with [--queries N] *)

let section title = Format.printf "@.==== %s ====@." title
let note fmt = Format.printf fmt

(* Same shape mix as the load bench: one query per nesting type of the
   paper plus a chain, all over the demo R/S/T relations. *)
let shapes =
  [
    ("N", "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V >= 20)");
    ("J", "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V <= R.U)");
    ( "JX",
      "SELECT R.ID FROM R WHERE R.Y NOT IN (SELECT S.Z FROM S WHERE S.V >= \
       R.U)" );
    ( "JA",
      "SELECT R.ID FROM R WHERE R.Y >= (SELECT MAX(S.Z) FROM S WHERE S.V = \
       R.U)" );
    ( "JALL",
      "SELECT R.ID FROM R WHERE R.Y <= ALL (SELECT S.Z FROM S WHERE S.V = \
       R.U)" );
    ( "chain",
      "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.Z IN \
       (SELECT T.W FROM T))" );
  ]

let normal_rows rows = List.sort compare rows

let normal_of_relation rel =
  let arity = Relational.Schema.arity (Relational.Relation.schema rel) in
  let rows = ref [] in
  Relational.Relation.iter rel (fun t ->
      rows :=
        ( List.init arity (fun i ->
              Relational.Value.to_string (Relational.Ftuple.value t i)),
          Int64.bits_of_float (Relational.Ftuple.degree t) )
        :: !rows);
  normal_rows !rows

(* Faults on every I/O site, scaled off one probability knob; torn writes
   and allocation failures are rarer than plain I/O errors, as on a real
   disk. All transient — the fatal path is exercised by the test suite,
   where the respawned environment can be observed deterministically. *)
let spec_string p =
  Printf.sprintf "read:p=%g;write:p=%g;alloc:p=%g;torn:p=%g;latency:p=0.01:ms=1"
    p p (p /. 2.0) (p /. 4.0)

let data_seed = 11
let workers = 2
let probs = [ 0.01; 0.03; 0.05 ]

(* Snappy backoffs: the demo queries run in single-digit milliseconds, so
   production-scale delays would just stretch the bench. *)
let server_retry =
  { Server.Retry.max_attempts = 6; base_delay_s = 0.002; max_delay_s = 0.02;
    jitter = 0.25 }

let client_retry =
  { Server.Retry.max_attempts = 4; base_delay_s = 0.002; max_delay_s = 0.05;
    jitter = 0.25 }

(* A chaos-tuned breaker: the default (50% threshold, 1 s cooldown) is
   right for production but here the injected failure rate is the point —
   it would shed most of the run and starve the answer comparison. A high
   threshold and a cooldown shorter than the client backoff keeps answers
   flowing while still exercising open/shed/reclose at the top
   probability. *)
let breaker () =
  Server.Breaker.create ~window:32 ~threshold:0.8 ~min_samples:16
    ~cooldown_s:0.02 ()

type cell_outcome = {
  o_fault_seed : int;
  o_prob : float;
  o_spec : string;
  o_telemetry_bad : int;
      (** telemetry-invariant violations in this cell: 0 when the query
          log holds exactly [accepted] records whose request-ID multiset
          equals the trace ring's — i.e. every logged request has exactly
          one span tree *)
  o_row : Harness.chaos_row;
}

(* Pull every "request_id" out of a JSONL query log. The records are
   written by {!Server.Telemetry.Query_log} with the ID as the second
   field, so a plain substring scan per line is enough — no JSON parser
   in the bench. *)
let log_request_ids path =
  let ids = ref [] in
  let ic = open_in path in
  (try
     while true do
       let line = input_line ic in
       let key = "\"request_id\":\"" in
       let k = String.length key in
       let n = String.length line in
       let rec find i =
         if i + k > n then ()
         else if String.sub line i k = key then begin
           let j = ref (i + k) in
           while !j < n && line.[!j] <> '"' do
             incr j
           done;
           ids := String.sub line (i + k) (!j - (i + k)) :: !ids
         end
         else find (i + 1)
       in
       find 0
     done
   with End_of_file -> ());
  close_in ic;
  !ids

let write_schedule path (cells : cell_outcome list) =
  let oc = open_out path in
  Printf.fprintf oc
    "{\"data_seed\": %d, \"workers\": %d, \"queries_per_cell\": %d,\n\
    \ \"cells\": [\n"
    data_seed workers !queries;
  let n = List.length cells in
  List.iteri
    (fun i c ->
      let r = c.o_row in
      Printf.fprintf oc
        "  {\"fault_seed\": %d, \"prob\": %g, \"spec\": \"%s\", \
         \"worker_plane_seeds\": [%s], \"ok\": %d, \"wrong\": %d, \
         \"retryable\": %d, \"failed\": %d, \"cancelled\": %d, \
         \"overloaded\": %d, \"injected\": %d, \"retries\": %d, \
         \"respawns\": %d, \"breaker_opened\": %d, \"shed\": %d, \
         \"leaked_workers\": %d}%s\n"
        c.o_fault_seed c.o_prob
        (Harness.json_escape c.o_spec)
        (String.concat ", "
           (List.init workers (fun w -> string_of_int (c.o_fault_seed + w))))
        r.Harness.c_ok r.c_wrong r.c_retryable r.c_failed r.c_cancelled
        r.c_overloaded r.c_injected r.c_retries r.c_respawns r.c_breaker_opened
        r.c_shed r.c_leaked
        (if i = n - 1 then "" else ","))
    cells;
  output_string oc " ]}\n";
  close_out oc

let run_cell ~batch ~expected ~setup ~fault_seed ~prob =
  let spec_s = spec_string prob in
  let spec =
    match Storage.Fault.parse_spec spec_s with
    | Ok s -> s
    | Error m -> failwith ("chaos: bad generated spec: " ^ m)
  in
  (* Telemetry rides along on every cell: a throwaway query log plus a
     trace ring big enough that nothing evicts (each client retry is a
     fresh request with its own ID), so after the drain we can assert
     log records == accepted and the log's ID multiset == the ring's. *)
  let qlog = Filename.temp_file "fsqld_chaos_qlog" ".jsonl" in
  let ring_capacity = (!queries * client_retry.Server.Retry.max_attempts) + 64 in
  let daemon =
    Server.Daemon.start ~workers ~queue_capacity:32 ~retry:server_retry
      ~batch ~breaker:(breaker ()) ~fault_spec:spec ~fault_seed
      ~query_log:qlog ~trace_ring_capacity:ring_capacity ~setup ()
  in
  let port = Server.Daemon.port daemon in
  let n_clients = 2 in
  let ok = Atomic.make 0 and wrong = Atomic.make 0 in
  let retryable = Atomic.make 0 and failed = Atomic.make 0 in
  let cancelled = Atomic.make 0 and overloaded = Atomic.make 0 in
  let worker idx n () =
    let client = Server.Client.connect ~port () in
    for i = 0 to n - 1 do
      let name, sql =
        List.nth shapes ((idx + i) mod List.length shapes)
      in
      match Server.Client.query ~retry:client_retry client sql with
      | Server.Client.Answer { rows; _ } ->
          let got =
            normal_rows
              (List.map
                 (fun (r : Server.Client.row) ->
                   (r.values, Int64.bits_of_float r.degree))
                 rows)
          in
          if got = List.assoc name expected then Atomic.incr ok
          else Atomic.incr wrong
      | Server.Client.Retryable _ -> Atomic.incr retryable
      | Server.Client.Failed _ | Server.Client.Rejected _ ->
          Atomic.incr failed
      | Server.Client.Cancelled _ -> Atomic.incr cancelled
      | Server.Client.Overloaded -> Atomic.incr overloaded
    done;
    Server.Client.close client
  in
  let per_client = !queries / n_clients in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init n_clients (fun i ->
        let n =
          if i = 0 then !queries - (per_client * (n_clients - 1))
          else per_client
        in
        Thread.create (worker i n) ())
  in
  List.iter Thread.join threads;
  (* Drain before reading the books: stop completes every admitted query,
     so any accepted-but-unanswered query left now is a genuine leak. *)
  Server.Daemon.stop daemon;
  let duration = Unix.gettimeofday () -. t0 in
  let c name = Server.Daemon.counter_value daemon name in
  let accepted = c "requests_accepted" in
  let leaked =
    accepted
    - (c "requests_completed" + c "requests_cancelled" + c "requests_failed"
     + c "requests_failed_transient")
  in
  (* Telemetry invariants, checked with the books: one log record per
     accepted request, and the same request-ID multiset in the log and
     the trace ring (=> every logged ID has exactly one span tree). *)
  let telemetry_bad =
    let logged = match Server.Daemon.query_log_written daemon with
      | Some n -> n
      | None -> -1
    in
    let log_ids = List.sort compare (log_request_ids qlog) in
    let ring_ids =
      List.sort compare (Server.Telemetry.Ring.ids (Server.Daemon.trace_ring daemon))
    in
    let bad = ref 0 in
    if logged <> accepted then begin
      incr bad;
      note "  telemetry: query log has %d records, accepted %d@." logged
        accepted
    end;
    if List.length log_ids <> accepted then begin
      incr bad;
      note "  telemetry: %d request IDs in the log file, accepted %d@."
        (List.length log_ids) accepted
    end;
    if log_ids <> ring_ids then begin
      incr bad;
      note "  telemetry: log / trace-ring request-ID multisets differ (%d vs \
            %d)@."
        (List.length log_ids) (List.length ring_ids)
    end;
    !bad
  in
  (try Sys.remove qlog with Sys_error _ -> ());
  {
    o_fault_seed = fault_seed;
    o_prob = prob;
    o_spec = spec_s;
    o_telemetry_bad = telemetry_bad;
    o_row =
      {
        Harness.c_engine = (if batch then "batch" else "scalar");
        c_fault_seed = fault_seed;
        c_prob = prob;
        c_spec = spec_s;
        c_ok = Atomic.get ok;
        c_wrong = Atomic.get wrong;
        c_retryable = Atomic.get retryable;
        c_failed = Atomic.get failed;
        c_cancelled = Atomic.get cancelled;
        c_overloaded = Atomic.get overloaded;
        c_injected = c "faults_injected";
        c_retries = c "retries";
        c_respawns = c "workers_respawned";
        c_breaker_opened = c "breaker_opened";
        c_shed = c "requests_shed_breaker";
        c_leaked = leaked;
        c_duration_s = duration;
      };
  }

let run (cfg : Harness.config) =
  section "Chaos - fault injection vs the serving path";
  note "every completed answer is checked bit-for-bit against the fault-free@.";
  note "sequential engine; after each cell the daemon drains and the books@.";
  note "must balance (accepted = completed + cancelled + failed + transient)@.";
  note "(%d queries per cell, %d workers, data seed %d)@.@." !queries workers
    data_seed;
  (* Fault-free ground truth: same loader, same data seed. *)
  let setup = Server.Demo.server_setup ~seed:data_seed () in
  let env = Storage.Env.create () in
  let catalog = Relational.Catalog.create env in
  setup env catalog;
  let expected =
    List.map
      (fun (name, sql) ->
        let q =
          Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql
        in
        (name, normal_of_relation (Unnest.Planner.run q)))
      shapes
  in
  Format.printf "%-6s | %-5s | %5s | %5s | %5s | %6s | %5s | %8s | %7s | %8s | %5s | %6s@."
    "seed" "p" "ok" "wrong" "retry-" "failed" "canc" "overload" "injected"
    "retries" "resp" "leaked";
  Harness.hr Format.std_formatter 104;
  let cells =
    List.concat_map
      (fun ds ->
        let fault_seed = cfg.Harness.seed + ds in
        List.map
          (fun prob ->
            let cell =
              run_cell ~batch:cfg.Harness.batch ~expected ~setup ~fault_seed
                ~prob
            in
            let r = cell.o_row in
            Format.printf
              "%-6d | %-5g | %5d | %5d | %5d | %6d | %5d | %8d | %7d | %8d | %5d | %6d@."
              fault_seed prob r.Harness.c_ok r.c_wrong r.c_retryable r.c_failed
              r.c_cancelled r.c_overloaded r.c_injected r.c_retries
              r.c_respawns r.c_leaked;
            Harness.chaos_results := r :: !Harness.chaos_results;
            cell)
          probs)
      [ 0; 1; 2 ]
  in
  (* Bench artifacts live under bench/artifacts/, not the repo root. *)
  let artifacts_dir = Filename.concat "bench" "artifacts" in
  (try Unix.mkdir "bench" 0o755
   with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ());
  (try Unix.mkdir artifacts_dir 0o755
   with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ());
  let schedule_path = Filename.concat artifacts_dir "chaos_schedule.json" in
  write_schedule schedule_path cells;
  let total f = List.fold_left (fun a c -> a + f c.o_row) 0 cells in
  let wrong = total (fun r -> r.Harness.c_wrong) in
  let leaked = total (fun r -> r.Harness.c_leaked) in
  let telemetry_bad =
    List.fold_left (fun a c -> a + c.o_telemetry_bad) 0 cells
  in
  note "@.wrote %s (%d cells)@." schedule_path (List.length cells);
  note "chaos verdict: %s (%d wrong answers, %d leaked queries, %d telemetry \
        violations, %d faults injected, %d retries, %d respawns)@."
    (if wrong = 0 && leaked = 0 && telemetry_bad = 0 then "PASS" else "FAIL")
    wrong leaked telemetry_bad
    (total (fun r -> r.Harness.c_injected))
    (total (fun r -> r.Harness.c_retries))
    (total (fun r -> r.Harness.c_respawns))
