(** Regenerates every table and figure of Section 9 of the paper, plus the
    membership-function figures and an ablation study.

    Usage: [bench/main.exe [targets] [--full] [--scale N] [--io-latency S]
    [--seed N] [--domains N] [--batch] [--clients L] [--queries N]
    [--trace PATH]] where targets are any of [table1 table2 table3 table4
    fig3 fig1 ablation chain sort scaling load chaos micro batch kernels
    telemetry wal recovery failover all] (default: all). [wal] measures WAL
    commit throughput per sync mode and redo-restart time vs log length;
    [recovery] is the SIGKILL crash-recovery chaos harness (see
    {!Recovery_chaos}); [failover] is the HA chaos harness — SIGKILL the
    primary mid-load, promote the WAL-shipped replica, prove zero
    acked-commit loss, bit-identical committed prefixes, and epoch
    fencing (see {!Failover_chaos}). [--batch] runs every merge-join cell on the
    vectorized columnar engine (rows are tagged ["engine": "batch"] in
    [BENCH_results.json]); the [batch] target measures that engine against
    the scalar one head-to-head, and [kernels] times the three vectorized
    inner loops standalone. [--trace PATH]
    additionally runs the 3-block chain query under the span collector and
    writes a Chrome trace_event file to PATH (bare [--trace PATH] runs only
    that). The [load] target runs closed-loop clients against an in-process
    fsqld ([--clients] is a comma list of client counts, [--domains] sets the
    worker count) and reports throughput and exact p50/p99 latency per client
    count. The [chaos] target reruns the serving path under deterministic
    fault injection ([--seed] picks the fault seeds, [--queries] the per-cell
    query count) and checks bit-identical answers and balanced books; see
    {!Chaos}.
    [--full] runs at the paper's absolute sizes (slow); the default scales
    every size by 8, which preserves all relation-size : buffer-size ratios.
    [--domains N] runs the merge-join cells on an N-domain task pool (the
    answers are identical; see the [scaling] target). Every measured cell is
    also dumped to [BENCH_results.json]. *)

open Frepro
open Harness

let section title = Format.printf "@.==== %s ====@." title
let note fmt = Format.printf fmt

(* ------------------------------------------------------------------ *)
(* Table 1: equal relation sizes, 128 B tuples, fan-out C = 7.         *)
(* ------------------------------------------------------------------ *)

let table1 cfg =
  section "Table 1 - Response time (s): equal relation sizes, C = 7";
  note "paper reference: NL 501 / 1965 / 7754 / 30879 / - / -@.";
  note "                 MJ 40 / 84 / 223 / 852 / 1897 / 3733 (speedup 12.5 -> 36.2)@.";
  note "scaled sizes: paper MB / %d, buffer %d pages@.@." cfg.scale (mem_pages cfg);
  let sizes = [ 1; 2; 4; 8; 16; 32 ] in
  (* The paper's nested loop "takes too long to terminate" from 16 MB on;
     same cutoff here (relative to the buffer). *)
  let nl_cutoff = 8 in
  Format.printf "%-22s" "Relation Size";
  List.iter (fun mb -> Format.printf "| %8dMB " mb) sizes;
  Format.printf "@.";
  let cells method_ limit =
    List.map
      (fun mb ->
        if mb > limit then None
        else
          let spec = spec_of ~paper_mb:mb ~tuple_bytes:128 ~fanout:7.0 cfg in
          Some
            (run_cell ~bench:"table1"
               ~cell:(Printf.sprintf "%dMB" mb)
               cfg ~outer:spec ~inner:spec method_))
      sizes
  in
  let nl = cells Nested_loop nl_cutoff in
  let mj = cells Merge_join max_int in
  let print_row name cells =
    Format.printf "%-22s" name;
    List.iter
      (function
        | None -> Format.printf "| %10s " "-"
        | Some m -> Format.printf "| %10s " (str_seconds m.response))
      cells;
    Format.printf "@."
  in
  print_row "Nested Loop" nl;
  print_row "Merge-join" mj;
  Format.printf "%-22s" "Speedup";
  List.iter2
    (fun nl mj ->
      match (nl, mj) with
      | Some n, Some m when m.response > 0.0 ->
          Format.printf "| %10.1f " (n.response /. m.response)
      | _ -> Format.printf "| %10s " "-")
    nl mj;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Table 2: outer fixed at 4 MB, inner 2-16 MB.                        *)
(* Table 3: merge-join time breakdown on the same cells.               *)
(* ------------------------------------------------------------------ *)

let table2_cells cfg =
  let outer = spec_of ~paper_mb:4 ~tuple_bytes:128 ~fanout:7.0 cfg in
  List.map
    (fun mb ->
      let inner = spec_of ~paper_mb:mb ~tuple_bytes:128 ~fanout:7.0 cfg in
      (mb, outer, inner))
    [ 2; 4; 8; 16 ]

let table2 cfg =
  section "Table 2 - Response time (s): outer fixed at 4MB, inner varies";
  note "paper reference: NL 3912 / 7790 / 15489 / 31049; MJ 156 / 205 / 476 / 2152@.";
  note "                 (NL grows linearly in the inner size; speedup peaks then falls)@.@.";
  let cells = table2_cells cfg in
  Format.printf "%-22s" "Inner Relation Size";
  List.iter (fun (mb, _, _) -> Format.printf "| %8dMB " mb) cells;
  Format.printf "@.";
  let cell_of (mb, o, i) method_ =
    run_cell ~bench:"table2" ~cell:(Printf.sprintf "inner-%dMB" mb) cfg
      ~outer:o ~inner:i method_
  in
  let nl = List.map (fun c -> cell_of c Nested_loop) cells in
  let mj = List.map (fun c -> cell_of c Merge_join) cells in
  let row name ms =
    Format.printf "%-22s" name;
    List.iter (fun m -> Format.printf "| %10s " (str_seconds m.response)) ms;
    Format.printf "@."
  in
  row "Nested Loop" nl;
  row "Merge-join" mj;
  Format.printf "%-22s" "Speedup";
  List.iter2 (fun n m -> Format.printf "| %10.1f " (n.response /. m.response)) nl mj;
  Format.printf "@."

let table3 cfg =
  section "Table 3 - Time breakdown for the merge-join method";
  note "paper reference: CPU%% 76 / 63 / 51 / 24; sorting%% 38.7 / 52.5 / 61.9 / 84.1@.@.";
  let cells = table2_cells cfg in
  let mj =
    List.map
      (fun (mb, o, i) ->
        run_cell ~bench:"table3" ~cell:(Printf.sprintf "inner-%dMB" mb) cfg
          ~outer:o ~inner:i Merge_join)
      cells
  in
  Format.printf "%-22s" "Inner Relation Size";
  List.iter (fun (mb, _, _) -> Format.printf "| %8dMB " mb) cells;
  Format.printf "@.";
  Format.printf "%-22s" "CPU time (%)";
  List.iter
    (fun m -> Format.printf "| %10.0f " (100.0 *. m.cpu /. Float.max 1e-9 m.response))
    mj;
  Format.printf "@.";
  Format.printf "%-22s" "Sorting time (%)";
  List.iter (fun m -> Format.printf "| %10.1f " (100.0 *. m.sort_share)) mj;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Table 4: 8000 tuples each, tuple size 128-2048 bytes, C = 1.        *)
(* ------------------------------------------------------------------ *)

let table4 cfg =
  section "Table 4 - Response time (s): varying tuple size, C = 1";
  note "paper reference: NL 485 / 514 / 584 / 729 / 1077; MJ 20 / 37 / 94 / 487 / 896@.";
  note "                 (tuple count fixed: CPU constant, I/O grows with tuple size)@.@.";
  (* 8000 tuples in the paper; the scaled copy shrinks the count (the tuple
     sizes are the experiment variable and stay as printed). *)
  let n = Int.max 500 (8000 * 4 / Int.max 1 (cfg.scale * 4)) in
  let sizes = [ 128; 256; 512; 1024; 2048 ] in
  Format.printf "(%d tuples per relation)@." n;
  Format.printf "%-22s" "Tuple Size";
  List.iter (fun b -> Format.printf "| %9dB " b) sizes;
  Format.printf "@.";
  let cell method_ b =
    let spec = { Workload.Gen.default_spec with n; tuple_bytes = b; groups = n } in
    run_cell ~bench:"table4" ~cell:(Printf.sprintf "%dB" b) cfg ~outer:spec
      ~inner:spec method_
  in
  let nl = List.map (cell Nested_loop) sizes in
  let mj = List.map (cell Merge_join) sizes in
  let row name ms =
    Format.printf "%-22s" name;
    List.iter (fun m -> Format.printf "| %10s " (str_seconds m.response)) ms;
    Format.printf "@."
  in
  row "Nested Loop" nl;
  row "Merge-join" mj;
  Format.printf "%-22s" "NL I/Os";
  List.iter (fun m -> Format.printf "| %10d " m.ios) nl;
  Format.printf "@.";
  Format.printf "%-22s" "MJ I/Os";
  List.iter (fun m -> Format.printf "| %10d " m.ios) mj;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Fig. 3: 8 MB relations, fan-out C = 1..128 (merge-join).            *)
(* ------------------------------------------------------------------ *)

let fig3 cfg =
  section "Fig. 3 - Merge-join vs join fan-out C (8MB relations)";
  note "paper reference: #IOs stays flat; CPU and response grow with C@.@.";
  let cs = [ 1; 2; 4; 8; 16; 32; 64; 128 ] in
  Format.printf "%-6s | %12s | %12s | %10s | %12s@." "C" "Response (s)"
    "CPU (s)" "#IOs" "fuzzy ops";
  hr Format.std_formatter 66;
  List.iter
    (fun c ->
      let spec = spec_of ~paper_mb:8 ~tuple_bytes:128 ~fanout:(float_of_int c) cfg in
      let m =
        run_cell ~bench:"fig3" ~cell:(Printf.sprintf "C-%d" c) cfg ~outer:spec
          ~inner:spec Merge_join
      in
      Format.printf "%-6d | %12s | %12s | %10d | %12d@." c (str_seconds m.response)
        (str_seconds m.cpu) m.ios m.fuzzy_ops)
    cs

(* ------------------------------------------------------------------ *)
(* Figs. 1-2: membership functions + Example 4.1 tables.               *)
(* ------------------------------------------------------------------ *)

let fig1 _cfg =
  section "Fig. 1 - Membership functions of 'medium young' and 'about 35'";
  let g n = Option.get (Fuzzy.Term.lookup Fuzzy.Term.paper n) in
  print_string
    (Fuzzy.Term.plot ~from_x:15.0 ~to_x:45.0
       [ ("medium young", g "medium young"); ("about 35", g "about 35") ]);
  section "Fig. 2 - AGE terms of the running example";
  print_string
    (Fuzzy.Term.plot ~from_x:15.0 ~to_x:60.0
       [
         ("medium young", g "medium young"); ("middle age", g "middle age");
         ("about 50", g "about 50"); ("about 29", g "about 29");
       ]);
  section "Fig. 2 - INCOME terms of the running example";
  print_string
    (Fuzzy.Term.plot ~from_x:0.0 ~to_x:120.0
       [
         ("low", g "low"); ("medium low", g "medium low");
         ("about 40K", g "about 40K"); ("about 60K", g "about 60K");
         ("medium high", g "medium high"); ("high", g "high");
       ]);
  section "Example 4.1 - Query 2 over the dating-service database";
  let env = Storage.Env.create () in
  let catalog = Bench_db.paper_db env in
  let run sql =
    Unnest.Planner.run
      (Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql)
  in
  let t = run "SELECT M.INCOME FROM M WHERE M.AGE = 'middle age'" in
  Format.printf "T = %a@." Relational.Relation.pp t;
  let answer =
    run
      "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME IN \
       (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')"
  in
  Format.printf "Answer = %a@." Relational.Relation.pp answer

(* ------------------------------------------------------------------ *)
(* Ablation: where does the gain come from?                            *)
(* ------------------------------------------------------------------ *)

let ablation cfg =
  section "Ablation - unnesting vs join algorithm";
  note "naive       : inner block re-evaluated per outer tuple (execution semantics)@.";
  note "nested loop : blocked NL, the paper's baseline@.";
  note "merge-join  : unnesting + extended merge-join (the paper's method)@.";
  note "indicator   : merge-join + fuzzy-equality-indicator prefilter [42]@.@.";
  let spec = spec_of ~paper_mb:2 ~tuple_bytes:128 ~fanout:7.0 cfg in
  let n = Int.min spec.Workload.Gen.n 1024 in
  let tiny = { spec with Workload.Gen.n; groups = Int.max 1 (n / 7) } in
  let env = Storage.Env.create ~pool_pages:(mem_pages cfg) () in
  let r, s = Workload.Gen.join_pair env ~seed:cfg.seed ~outer:tiny ~inner:tiny in
  let catalog = Relational.Catalog.create env in
  Relational.Catalog.add catalog r;
  Relational.Catalog.add catalog s;
  let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper bench_sql in
  let stats = env.Storage.Env.stats in
  let measure f =
    Storage.Env.reset_stats env;
    ignore (Storage.Iostats.timed stats Storage.Iostats.Other f);
    let cpu = Storage.Iostats.cpu_seconds stats in
    let ios = Storage.Iostats.total_ios stats in
    cpu +. (float_of_int ios *. cfg.io_latency)
  in
  let mp = mem_pages cfg in
  let naive_t = measure (fun () -> Unnest.Naive_eval.query q) in
  let nl_t =
    measure (fun () ->
        Unnest.Planner.run ~strategy:Unnest.Planner.Nested_loop ~mem_pages:mp q)
  in
  let mj_t =
    measure (fun () ->
        Unnest.Planner.run ~strategy:Unnest.Planner.Unnest_merge ~mem_pages:mp q)
  in
  let ind_t =
    measure (fun () ->
        ignore
          (Relational.Join_merge.with_indicator ~outer:r ~inner:s ~outer_attr:1
             ~inner_attr:1 ~mem_pages:mp ()))
  in
  Format.printf "(%d-tuple relations, C = 7)@." n;
  Format.printf "  %-28s %10s s@." "naive per-tuple rescan" (str_seconds naive_t);
  Format.printf "  %-28s %10s s@." "blocked nested loop" (str_seconds nl_t);
  Format.printf "  %-28s %10s s@." "unnest + merge-join" (str_seconds mj_t);
  Format.printf "  %-28s %10s s  (join only)@." "merge-join + indicator" (str_seconds ind_t)

(* ------------------------------------------------------------------ *)
(* External sort: load-sort vs replacement-selection run formation.    *)
(* ------------------------------------------------------------------ *)

let sort_bench cfg =
  section "Sort ablation - run formation under scarce memory";
  note "replacement selection (Knuth) forms ~2x longer runs on random input,@.";
  note "saving a merge pass when runs exceed the fan-in (cf. Opt-Tech Sort)@.@.";
  let spec = spec_of ~paper_mb:8 ~tuple_bytes:128 ~fanout:7.0 cfg in
  Format.printf "%-28s | %8s | %10s | %12s@." "strategy (mem = 4 pages)" "runs"
    "total I/Os" "response (s)";
  hr Format.std_formatter 70;
  List.iter
    (fun (label, strategy) ->
      let env = Storage.Env.create ~pool_pages:(mem_pages cfg) () in
      let rel = Workload.Gen.relation env ~seed:cfg.seed ~name:"R" spec in
      let compare_records r1 r2 =
        let v1 = Relational.Ftuple.value (Relational.Codec.decode r1) 1 in
        let v2 = Relational.Ftuple.value (Relational.Codec.decode r2) 1 in
        Fuzzy.Interval.compare_lex (Relational.Value.support v1)
          (Relational.Value.support v2)
      in
      let file = Relational.Relation.file rel in
      let runs =
        Storage.External_sort.initial_runs strategy file
          ~compare:compare_records ~mem_pages:4
      in
      let n_runs = List.length runs in
      List.iter Storage.Heap_file.destroy runs;
      Storage.Env.reset_stats env;
      let sorted =
        Storage.External_sort.sort ~run_strategy:strategy file
          ~compare:compare_records ~mem_pages:4
      in
      ignore sorted;
      let stats = env.Storage.Env.stats in
      let response =
        Storage.Iostats.cpu_seconds stats
        +. (float_of_int (Storage.Iostats.total_ios stats) *. cfg.io_latency)
      in
      Format.printf "%-28s | %8d | %10d | %12s@." label n_runs
        (Storage.Iostats.total_ios stats)
        (str_seconds response))
    [ ("load-sort", Storage.External_sort.Load_sort);
      ("replacement selection", Storage.External_sort.Replacement_selection) ]

(* ------------------------------------------------------------------ *)
(* Chain queries (Section 8): naive vs merge cascade vs DP ordering.   *)
(* ------------------------------------------------------------------ *)

let chain_bench cfg =
  section "Chain queries (Section 8) - 3-block nesting, skewed block sizes";
  note "paper: response O(sum n_i log n_i) unnested vs O(prod n_i) nested;@.";
  note "Section 8 also suggests DP join ordering to minimise intermediates@.@.";
  let sql =
    "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.W <= R.W AND \
     S.X IN (SELECT T.X FROM T WHERE T.W >= S.W))"
  in
  let run_one ~n1 ~n2 ~n3 =
    let env = Storage.Env.create ~pool_pages:(mem_pages cfg) () in
    let catalog = Relational.Catalog.create env in
    let add name n seed =
      Relational.Catalog.add catalog
        (Workload.Gen.relation env ~seed ~name
           { Workload.Gen.default_spec with n; groups = Int.max 1 (n / 7) })
    in
    add "R" n1 31;
    add "S" n2 32;
    add "T" n3 33;
    let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql in
    let stats = env.Storage.Env.stats in
    let measure f =
      Storage.Env.reset_stats env;
      ignore (Storage.Iostats.timed stats Storage.Iostats.Other f);
      Storage.Iostats.cpu_seconds stats
      +. (float_of_int (Storage.Iostats.total_ios stats) *. cfg.io_latency)
    in
    let mp = mem_pages cfg in
    let naive =
      if n1 * n2 * n3 <= 32_000_000 then
        Some (measure (fun () -> Unnest.Naive_eval.query q))
      else None
    in
    let fixed = measure (fun () -> Unnest.Planner.run ~chain_dp:false ~mem_pages:mp q) in
    let dp = measure (fun () -> Unnest.Planner.run ~chain_dp:true ~mem_pages:mp q) in
    (naive, fixed, dp)
  in
  Format.printf "%-24s | %12s | %14s | %14s@." "blocks (R, S, T)" "naive (s)"
    "merge L-to-R (s)" "merge DP (s)";
  hr Format.std_formatter 76;
  List.iter
    (fun (n1, n2, n3) ->
      let naive, fixed, dp = run_one ~n1 ~n2 ~n3 in
      Format.printf "%-24s | %12s | %14s | %14s@."
        (Printf.sprintf "%d x %d x %d" n1 n2 n3)
        (match naive with Some t -> str_seconds t | None -> "-")
        (str_seconds fixed) (str_seconds dp))
    [ (200, 200, 200); (2000, 2000, 50); (4000, 4000, 25) ]

(* ------------------------------------------------------------------ *)
(* Multicore scaling: the Table 1 micro workload at 1, 2 and 4 domains. *)
(* ------------------------------------------------------------------ *)

let scaling cfg =
  section "Scaling - merge-join wall time vs --domains (Table 1 workload)";
  note "same query, same answer; the parallel engine range-partitions the@.";
  note "sweep and sorts runs on separate domains (plus key decoration)@.@.";
  let spec = spec_of ~paper_mb:8 ~tuple_bytes:128 ~fanout:7.0 cfg in
  let domain_counts =
    if cfg.domains > 1 then [ 1; cfg.domains ] else [ 1; 2; 4 ]
  in
  Format.printf "%-10s | %12s | %9s | %9s | %12s | %10s | %8s | %10s | %8s@."
    "domains" "wall (s)" "sort (s)" "merge (s)" "response (s)" "#IOs"
    "io-ovh" "answers" "speedup";
  hr Format.std_formatter 108;
  let base_wall = ref None and base_ios = ref None in
  List.iter
    (fun d ->
      (* Best of three: wall clock on a shared machine is noisy, and the
         minimum is the standard estimator of the undisturbed run. *)
      let m =
        List.fold_left
          (fun best rep ->
            let m =
              run_cell ~bench:"scaling"
                ~cell:(Printf.sprintf "domains-%d-rep%d" d rep)
                { cfg with domains = d }
                ~outer:spec ~inner:spec Merge_join
            in
            match best with
            | Some b when b.wall <= m.wall -> Some b
            | _ -> Some m)
          None [ 1; 2; 3 ]
        |> Option.get
      in
      let speedup =
        match !base_wall with
        | None ->
            base_wall := Some m.wall;
            1.0
        | Some w -> w /. Float.max 1e-9 m.wall
      in
      (* Parallel I/O overhead: each domain sorts into a private buffer
         pool and the partitioned sweep replicates boundary pages, so
         total page transfers grow with the domain count even though wall
         time shrinks. The ratio against the sequential run makes the
         trade explicit (it also lands in BENCH_results.json). *)
      let io_overhead =
        match !base_ios with
        | None ->
            base_ios := Some m.ios;
            1.0
        | Some b -> float_of_int m.ios /. Float.max 1.0 (float_of_int b)
      in
      record_io_overhead ~bench:"scaling" ~domains:d io_overhead;
      Format.printf
        "%-10d | %12s | %9s | %9s | %12s | %10d | %7.2fx | %10d | %7.2fx@." d
        (str_seconds m.wall) (str_seconds m.sort_s) (str_seconds m.merge_s)
        (str_seconds m.response) m.ios io_overhead m.answer_size speedup)
    domain_counts;
  match (!base_ios, List.rev domain_counts) with
  | Some b, last :: _ when last > 1 ->
      note
        "@.(the parallel engine trades extra page transfers - private sort@.";
      note
        " pools and replicated sweep boundaries - for wall-clock speedup;@.";
      note " sequential baseline: %d I/Os)@." b
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Server load: closed-loop clients against an in-process fsqld.       *)
(* ------------------------------------------------------------------ *)

let load_clients = ref [ 1; 2; 4; 8 ]
let load_duration = 1.5

(* One query per nesting shape of the paper (plus a chain), all over the
   generated R/S/T of [Server.Demo.load_nested] — deterministic in the
   seed, so the sequential engine provides exact expected answers. *)
let load_shapes =
  [
    ("N", "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V >= 20)");
    ("J", "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V <= R.U)");
    ( "JX",
      "SELECT R.ID FROM R WHERE R.Y NOT IN (SELECT S.Z FROM S WHERE S.V >= \
       R.U)" );
    ( "JA",
      "SELECT R.ID FROM R WHERE R.Y >= (SELECT MAX(S.Z) FROM S WHERE S.V = \
       R.U)" );
    ( "JALL",
      "SELECT R.ID FROM R WHERE R.Y <= ALL (SELECT S.Z FROM S WHERE S.V = \
       R.U)" );
    ( "chain",
      "SELECT R.ID FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.Z IN \
       (SELECT T.W FROM T))" );
  ]

(* Normal form for answer comparison: rows sorted, degrees as IEEE-754
   bits (the wire carries them as bits, so equality is exact). *)
let normal_rows rows = List.sort compare rows

let normal_of_relation rel =
  let arity = Relational.Schema.arity (Relational.Relation.schema rel) in
  let rows = ref [] in
  Relational.Relation.iter rel (fun t ->
      rows :=
        ( List.init arity (fun i ->
              Relational.Value.to_string (Relational.Ftuple.value t i)),
          Int64.bits_of_float (Relational.Ftuple.degree t) )
        :: !rows);
  normal_rows !rows

let load_bench cfg =
  section "Server load - closed-loop clients vs an in-process fsqld";
  note "clients loop over the nesting shapes (N J JX JA JALL chain); every@.";
  note "answer is checked against the sequential engine, exact degrees@.";
  note "(workers = --domains = %d parallel queries)@.@." cfg.domains;
  let setup = Server.Demo.server_setup ~seed:cfg.seed () in
  (* Sequential ground truth, same loader, same seed. *)
  let env = Storage.Env.create () in
  let catalog = Relational.Catalog.create env in
  setup env catalog;
  let expected =
    List.map
      (fun (name, sql) ->
        let q =
          Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql
        in
        (name, normal_of_relation (Unnest.Planner.run q)))
      load_shapes
  in
  let max_clients = List.fold_left Int.max 1 !load_clients in
  let daemon =
    Server.Daemon.start ~workers:cfg.domains ~batch:cfg.batch
      ~queue_capacity:(max_clients + cfg.domains) ~setup ()
  in
  let port = Server.Daemon.port daemon in
  Format.printf "%-8s | %8s | %8s | %9s | %9s | %6s | %10s@." "clients"
    "queries" "qps" "p50 (ms)" "p99 (ms)" "wrong" "overloaded";
  hr Format.std_formatter 72;
  List.iter
    (fun c ->
      let lat_lock = Mutex.create () in
      let latencies = ref [] in
      let completed = Atomic.make 0 in
      let wrong = Atomic.make 0 in
      let overloaded = Atomic.make 0 in
      let stop_at = Unix.gettimeofday () +. load_duration in
      let worker idx () =
        let client = Server.Client.connect ~port () in
        let mine = ref [] in
        let i = ref idx in
        while Unix.gettimeofday () < stop_at do
          let name, sql = List.nth load_shapes (!i mod List.length load_shapes) in
          incr i;
          let t0 = Unix.gettimeofday () in
          match Server.Client.query client sql with
          | Server.Client.Answer { rows; _ } ->
              let got =
                normal_rows
                  (List.map
                     (fun (r : Server.Client.row) ->
                       (r.values, Int64.bits_of_float r.degree))
                     rows)
              in
              if got <> List.assoc name expected then Atomic.incr wrong;
              Atomic.incr completed;
              mine := (Unix.gettimeofday () -. t0) :: !mine
          | Server.Client.Overloaded ->
              Atomic.incr overloaded;
              Thread.yield ()
          | Server.Client.Retryable _ ->
              (* no fault injection here, so a transient failure is as
                 wrong as a bad answer *)
              Atomic.incr wrong
          | Server.Client.Failed _ | Server.Client.Rejected _
          | Server.Client.Cancelled _ ->
              Atomic.incr wrong
        done;
        Server.Client.close client;
        Mutex.lock lat_lock;
        latencies := !mine @ !latencies;
        Mutex.unlock lat_lock
      in
      let t_start = Unix.gettimeofday () in
      let threads = List.init c (fun i -> Thread.create (worker i) ()) in
      List.iter Thread.join threads;
      let duration = Unix.gettimeofday () -. t_start in
      let lats = Array.of_list !latencies in
      Array.sort compare lats;
      let pct p =
        if Array.length lats = 0 then 0.0
        else
          lats.(Int.min
                  (Array.length lats - 1)
                  (int_of_float (p *. float_of_int (Array.length lats))))
      in
      let queries = Atomic.get completed in
      let qps = float_of_int queries /. Float.max 1e-9 duration in
      let p50 = 1000.0 *. pct 0.50 and p99 = 1000.0 *. pct 0.99 in
      Format.printf "%-8d | %8d | %8.1f | %9.2f | %9.2f | %6d | %10d@." c
        queries qps p50 p99 (Atomic.get wrong) (Atomic.get overloaded);
      Harness.load_results :=
        {
          Harness.l_clients = c;
          l_workers = cfg.domains;
          l_domains = 1;
          l_engine = (if cfg.batch then "batch" else "scalar");
          l_queries = queries;
          l_wrong = Atomic.get wrong;
          l_overloaded = Atomic.get overloaded;
          l_qps = qps;
          l_p50_ms = p50;
          l_p99_ms = p99;
          l_duration_s = duration;
        }
        :: !Harness.load_results)
    !load_clients;
  Server.Daemon.stop daemon

(* ------------------------------------------------------------------ *)
(* --trace PATH: run the 3-block chain query once under a trace         *)
(* collector and dump a Chrome trace_event file (chrome://tracing or    *)
(* https://ui.perfetto.dev). With --domains N the parallel lanes show   *)
(* up as separate threads. CI uses this as its trace smoke test.        *)
(* ------------------------------------------------------------------ *)

let trace_run cfg path =
  section "Execution trace - chain query under the span collector";
  let sql =
    "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.W <= R.W AND \
     S.X IN (SELECT T.X FROM T WHERE T.W >= S.W))"
  in
  let env = Storage.Env.create ~pool_pages:(mem_pages cfg) () in
  let catalog = Relational.Catalog.create env in
  let add name n seed =
    Relational.Catalog.add catalog
      (Workload.Gen.relation env ~seed ~name
         { Workload.Gen.default_spec with n; groups = Int.max 1 (n / 7) })
  in
  add "R" 800 31;
  add "S" 800 32;
  add "T" 200 33;
  let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql in
  let trace = Storage.Trace.create () in
  let answer =
    Unnest.Planner.run ~mem_pages:(mem_pages cfg) ~domains:cfg.domains ~trace q
  in
  Storage.Trace.write_chrome trace ~path;
  note "query: %s@." sql;
  note "answer rows: %d@." (Relational.Relation.cardinality answer);
  note "wrote %s (%d spans, domains %d) - open in chrome://tracing@."
    path
    (Storage.Trace.span_count trace)
    cfg.domains

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the kernel operations.                 *)
(* ------------------------------------------------------------------ *)

let micro _cfg =
  section "Micro-benchmarks (Bechamel): fuzzy kernel operations";
  let open Bechamel in
  let g n = Option.get (Fuzzy.Term.lookup Fuzzy.Term.paper n) in
  let my = g "medium young" and ma = g "middle age" in
  let tup =
    Relational.Ftuple.make
      [| Relational.Value.Int 7; Relational.Value.Fuzzy my;
         Relational.Value.Str "padding" |]
      0.75
  in
  let encoded = Relational.Codec.encode ~pad_to:128 tup in
  let tests =
    Test.make_grouped ~name:"kernel"
      [
        Test.make ~name:"eq_height (trap/trap)"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Fuzzy.Fuzzy_compare.degree Fuzzy.Fuzzy_compare.Eq my ma)));
        Test.make ~name:"ge_height (trap/trap)"
          (Staged.stage (fun () ->
               Sys.opaque_identity
                 (Fuzzy.Fuzzy_compare.degree Fuzzy.Fuzzy_compare.Ge my ma)));
        Test.make ~name:"codec encode (128B)"
          (Staged.stage (fun () ->
               Sys.opaque_identity (Relational.Codec.encode ~pad_to:128 tup)));
        Test.make ~name:"codec decode (128B)"
          (Staged.stage (fun () ->
               Sys.opaque_identity (Relational.Codec.decode encoded)));
        Test.make ~name:"interval-order compare"
          (Staged.stage (fun () ->
               Sys.opaque_identity (Fuzzy.Interval_order.compare my ma)));
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let bcfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all bcfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  Hashtbl.iter
    (fun name res ->
      match Analyze.OLS.estimates res with
      | Some [ est ] -> Format.printf "  %-40s %12.1f ns/op@." name est
      | _ -> Format.printf "  %-40s (no estimate)@." name)
    results

(* ------------------------------------------------------------------ *)
(* Batch: the vectorized columnar executor against the scalar engine   *)
(* on the Table 1 workload, sequential (domains = 1), best of three.   *)
(* CI asserts the speedup and checksum equality from the JSON rows.    *)
(* ------------------------------------------------------------------ *)

let batch_bench cfg =
  section "Batch - vectorized columnar executor vs scalar (Table 1 workload)";
  note "same type J query, same data, domains 1; wall is the best of three@.";
  note "reps; answers must be bit-identical (order-independent checksum in@.";
  note "BENCH_results.json)@.@.";
  (* 16 MB per side: the extra external-merge pass makes the cell
     sort-dominated like the paper's Table 1, which is exactly where the
     decorated columnar sort pays off. *)
  let spec = spec_of ~paper_mb:16 ~tuple_bytes:128 ~fanout:7.0 cfg in
  let best_of engine batch =
    List.fold_left
      (fun best rep ->
        let m =
          run_cell ~bench:"batch"
            ~cell:(Printf.sprintf "%s-rep%d" engine rep)
            { cfg with domains = 1; batch }
            ~outer:spec ~inner:spec Merge_join
        in
        match best with Some b when b.wall <= m.wall -> Some b | _ -> Some m)
      None [ 1; 2; 3 ]
    |> Option.get
  in
  Format.printf "%-8s | %12s | %9s | %9s | %10s | %12s | %10s@." "engine"
    "wall (s)" "sort (s)" "merge (s)" "#IOs" "fuzzy ops" "answers";
  hr Format.std_formatter 84;
  let show engine m =
    Format.printf "%-8s | %12s | %9s | %9s | %10d | %12d | %10d@." engine
      (str_seconds m.wall) (str_seconds m.sort_s) (str_seconds m.merge_s)
      m.ios m.fuzzy_ops m.answer_size
  in
  let s = best_of "scalar" false in
  show "scalar" s;
  let b = best_of "batch" true in
  show "batch" b;
  let checksums =
    List.filter_map
      (fun r -> if r.row_bench = "batch" then Some r.row_checksum else None)
      !results
  in
  let identical =
    match checksums with [] -> false | c :: cs -> List.for_all (( = ) c) cs
  in
  note "@.speedup (scalar wall / batch wall): %.2fx; checksums %s@."
    (s.wall /. Float.max 1e-9 b.wall)
    (if identical then "identical across all reps and engines"
     else "DIFFER - the engines disagree");
  if not identical then failwith "batch bench: engine checksums differ"

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: the batch Table-1 cell served by an in-process  *)
(* fsqld, telemetry fully off vs fully on (metrics port + query log;   *)
(* windowed metrics and the trace ring are always on). CI asserts the  *)
(* on/off wall ratio <= 1.05 and checksum equality from the JSON rows. *)
(* ------------------------------------------------------------------ *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let telemetry_bench cfg =
  section "Telemetry overhead - batch cell through fsqld, off vs on";
  note "same 16MB-side type J cell as the batch bench, served by a@.";
  note "1-worker daemon; 'on' adds --metrics-port + --query-log (windowed@.";
  note "metrics and the trace ring run in both). Wall is the best of 5@.";
  note "client-observed reps; answers must be bit-identical@.@.";
  let spec = spec_of ~paper_mb:16 ~tuple_bytes:128 ~fanout:7.0 cfg in
  let setup env catalog =
    let r, s =
      Workload.Gen.join_pair env ~seed:cfg.seed ~outer:spec ~inner:spec
    in
    Relational.Catalog.add catalog r;
    Relational.Catalog.add catalog s
  in
  let reps = 5 in
  let run_config ~on =
    let qlog =
      if on then Some (Filename.temp_file "fsqld_qlog" ".jsonl") else None
    in
    let daemon =
      Server.Daemon.start ~workers:1 ~domains:1 ~batch:true
        ~mem_pages:(mem_pages cfg)
        ?metrics_port:(if on then Some 0 else None)
        ?query_log:qlog ~setup ()
    in
    let port = Server.Daemon.port daemon in
    let client = Server.Client.connect ~port () in
    let best = ref infinity in
    let checksum = ref "" in
    for _rep = 1 to reps do
      let t0 = Unix.gettimeofday () in
      match Server.Client.query client Harness.bench_sql with
      | Server.Client.Answer { rows; _ } ->
          let dt = Unix.gettimeofday () -. t0 in
          if dt < !best then best := dt;
          checksum :=
            Harness.checksum_of_rows
              (List.map
                 (fun (r : Server.Client.row) ->
                   (r.values, Int64.bits_of_float r.degree))
                 rows)
      | _ -> failwith "telemetry bench: query did not complete"
    done;
    if on then begin
      (* While the server is live, validate the whole exposition surface:
         scrape /metrics and /healthz, and check one record per request
         landed in the query log. *)
      (match Server.Daemon.metrics_port daemon with
      | Some p ->
          let status, body = Server.Telemetry.Http.get ~port:p "/metrics" in
          if status <> 200 then failwith "telemetry bench: /metrics not 200";
          List.iter
            (fun needle ->
              if not (contains_sub body needle) then
                failwith ("telemetry bench: /metrics missing " ^ needle))
            [
              "# TYPE fsqld_requests_completed counter";
              "fsqld_latency_s_window{quantile=\"0.99\"}";
              "fsqld_queue_depth";
            ];
          let hstatus, hbody = Server.Telemetry.Http.get ~port:p "/healthz" in
          if hstatus <> 200 || not (contains_sub hbody "\"status\":\"ok\"")
          then failwith "telemetry bench: /healthz not healthy"
      | None -> failwith "telemetry bench: metrics port did not bind");
      match Server.Daemon.query_log_written daemon with
      | Some n when n = reps -> ()
      | n ->
          failwith
            (Printf.sprintf
               "telemetry bench: query log has %s records, expected %d"
               (match n with Some n -> string_of_int n | None -> "no")
               reps)
    end;
    Server.Client.close client;
    Server.Daemon.stop daemon;
    Option.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) qlog;
    results :=
      {
        row_bench = "telemetry";
        row_cell = (if on then "on" else "off");
        row_method = "daemon";
        row_engine = "batch";
        row_domains = 1;
        row_scale = cfg.scale;
        row_wall_s = !best;
        row_response_s = !best;
        row_cpu_s = 0.0;
        row_ios = 0;
        row_fuzzy_ops = 0;
        row_answer_size = 0;
        row_checksum = !checksum;
        row_io_overhead = 1.0;
      }
      :: !results;
    (!best, !checksum)
  in
  let off_wall, off_sum = run_config ~on:false in
  let on_wall, on_sum = run_config ~on:true in
  Format.printf "%-10s | %12s@." "telemetry" "wall (s)";
  hr Format.std_formatter 26;
  Format.printf "%-10s | %12s@." "off" (str_seconds off_wall);
  Format.printf "%-10s | %12s@." "on" (str_seconds on_wall);
  note "@.overhead (on wall / off wall): %.3fx; checksums %s@."
    (on_wall /. Float.max 1e-9 off_wall)
    (if off_sum = on_sum then "identical" else "DIFFER");
  if off_sum <> on_sum then
    failwith "telemetry bench: answers differ with telemetry on"

(* ------------------------------------------------------------------ *)
(* Kernels: the three batch inner loops standalone, scalar vs          *)
(* vectorized, in rows (elements) per second.                          *)
(* ------------------------------------------------------------------ *)

let kernels cfg =
  section "Kernels - scalar vs vectorized inner loops (rows/sec)";
  note "the three loops the batch executor vectorizes: trapezoid@.";
  note "membership over a column, min/max degree combination, and the@.";
  note "merge-join window sweep over sorted runs@.@.";
  let rng = Random.State.make [| cfg.seed; 97 |] in
  let n = 200_000 in
  let record cell engine rows secs =
    results :=
      {
        row_bench = "kernels";
        row_cell = cell;
        row_method = "kernel";
        row_engine = engine;
        row_domains = 1;
        row_scale = cfg.scale;
        row_wall_s = secs;
        row_response_s = secs;
        row_cpu_s = secs;
        row_ios = 0;
        row_fuzzy_ops = rows;
        row_answer_size = rows;
        row_checksum = "";
        row_io_overhead = 1.0;
      }
      :: !results;
    Format.printf "  %-24s %-8s %12.2f M rows/s@." cell engine
      (float_of_int rows /. Float.max 1e-9 secs /. 1e6)
  in
  (* best of five: the minimum is the standard estimator of the undisturbed
     run, and these loops are short enough for scheduler noise to dominate
     a single measurement *)
  let time f =
    List.fold_left
      (fun best _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        Float.min best (Unix.gettimeofday () -. t0))
      infinity [ 1; 2; 3; 4; 5 ]
  in
  (* 1. trapezoid membership over a column *)
  let tr = Workload.Gen.random_trapezoid rng ~lo:0.0 ~hi:1000.0 in
  let xs = Array.init n (fun _ -> Random.State.float rng 1000.0) in
  let dst = Array.make n 0.0 in
  let reps = 20 in
  let s =
    time (fun () ->
        for _ = 1 to reps do
          for i = 0 to n - 1 do
            dst.(i) <- Fuzzy.Trapezoid.mem tr xs.(i)
          done
        done)
  in
  record "membership" "scalar" (reps * n) s;
  let b =
    time (fun () ->
        for _ = 1 to reps do
          Relational.Batch_kernels.mem_into tr ~xs ~n ~dst
        done)
  in
  record "membership" "batch" (reps * n) b;
  (* 2. min/max t-norm / co-norm passes *)
  let src = Array.init n (fun _ -> Random.State.float rng 1.0) in
  let acc = Array.init n (fun _ -> Random.State.float rng 1.0) in
  let acc0 = Array.copy acc in
  let sink = ref 0.0 in
  let s =
    time (fun () ->
        for _ = 1 to reps do
          Array.blit acc0 0 acc 0 n;
          for i = 0 to n - 1 do
            acc.(i) <- Fuzzy.Degree.conj acc.(i) src.(i)
          done;
          let m = ref 0.0 in
          for i = 0 to n - 1 do
            m := Fuzzy.Degree.disj !m acc.(i)
          done;
          sink := !m
        done)
  in
  record "tnorm-pass" "scalar" (reps * n) s;
  let b =
    time (fun () ->
        for _ = 1 to reps do
          Array.blit acc0 0 acc 0 n;
          Relational.Batch_kernels.conj_into ~src ~dst:acc ~n;
          sink := Relational.Batch_kernels.disj_reduce ~xs:acc ~n
        done)
  in
  record "tnorm-pass" "batch" (reps * n) b;
  ignore !sink;
  (* 3. the window sweep over ⪯-sorted runs (includes batch decode) *)
  let env = Storage.Env.create ~pool_pages:(mem_pages cfg) () in
  let spec = spec_of ~paper_mb:2 ~tuple_bytes:128 ~fanout:7.0 cfg in
  let r, s_rel =
    Workload.Gen.join_pair env ~seed:cfg.seed ~outer:spec ~inner:spec
  in
  let sorted_r =
    Relational.Join_merge.sort_by r ~attr:1 ~mem_pages:(mem_pages cfg)
  in
  let sorted_s =
    Relational.Join_merge.sort_by s_rel ~attr:1 ~mem_pages:(mem_pages cfg)
  in
  let pairs = ref 0 in
  let sweep batch =
    (* the batch side consumes the window through the vectorized emitter,
       like the IN / NOT IN handlers do; the scalar side walks rng lists *)
    let f_batch =
      if batch then
        Some
          (fun _ _ ~inner:_ ~idx:_ ~n ~d_eq:_ -> pairs := !pairs + n)
      else None
    in
    time (fun () ->
        pairs := 0;
        Relational.Join_merge.sweep_sorted ~batch ?f_batch ~outer:sorted_r
          ~inner:sorted_s ~outer_attr:1 ~inner_attr:1
          ~mem_pages:(mem_pages cfg)
          ~f:(fun _ rng -> pairs := !pairs + List.length rng)
          ())
  in
  let rows = Relational.Relation.cardinality sorted_r in
  let s = sweep false in
  record "window-sweep" "scalar" rows s;
  let scalar_pairs = !pairs in
  let b = sweep true in
  record "window-sweep" "batch" rows b;
  if !pairs <> scalar_pairs then
    failwith "kernels: sweep pair counts differ between engines";
  note "@.(window sweep examined %d pairs per engine over %d outer rows)@."
    scalar_pairs rows

(* ------------------------------------------------------------------ *)

let all_targets =
  [
    ("table1", table1); ("table2", table2); ("table3", table3);
    ("table4", table4); ("fig3", fig3); ("fig1", fig1); ("ablation", ablation);
    ("chain", chain_bench); ("sort", sort_bench); ("scaling", scaling);
    ("load", load_bench); ("chaos", Chaos.run); ("micro", micro);
    ("batch", batch_bench); ("kernels", kernels);
    ("telemetry", telemetry_bench); ("wal", Wal_bench.run);
    ("recovery", Recovery_chaos.run);
    ("failover", Failover_chaos.run);
  ]

let () =
  let cfg = ref default_config in
  let targets = ref [] in
  let trace_path = ref None in
  let rec parse = function
    | [] -> ()
    | "--trace" :: path :: rest ->
        trace_path := Some path;
        parse rest
    | "--full" :: rest ->
        cfg := { !cfg with scale = 1 };
        parse rest
    | "--scale" :: n :: rest ->
        cfg := { !cfg with scale = int_of_string n };
        parse rest
    | "--io-latency" :: s :: rest ->
        cfg := { !cfg with io_latency = float_of_string s };
        parse rest
    | "--seed" :: n :: rest ->
        cfg := { !cfg with seed = int_of_string n };
        parse rest
    | "--batch" :: rest ->
        cfg := { !cfg with batch = true };
        parse rest
    | "--domains" :: n :: rest -> (
        match int_of_string_opt n with
        | Some d when d >= 1 ->
            cfg := { !cfg with domains = d };
            parse rest
        | _ ->
            Format.eprintf "--domains expects a positive integer@.";
            exit 2)
    | "--queries" :: n :: rest -> (
        match int_of_string_opt n with
        | Some q when q >= 1 ->
            Chaos.queries := q;
            parse rest
        | _ ->
            Format.eprintf "--queries expects a positive integer@.";
            exit 2)
    | "--clients" :: spec :: rest -> (
        let counts =
          List.filter_map int_of_string_opt (String.split_on_char ',' spec)
        in
        match counts with
        | [] ->
            Format.eprintf "--clients expects a comma-separated list, e.g. 2,4,8@.";
            exit 2
        | cs when List.for_all (fun c -> c >= 1) cs ->
            load_clients := cs;
            parse rest
        | _ ->
            Format.eprintf "--clients counts must be positive@.";
            exit 2)
    | "all" :: rest -> parse rest
    | t :: rest when List.mem_assoc t all_targets ->
        targets := t :: !targets;
        parse rest
    | t :: _ ->
        Format.eprintf "unknown bench target %s; known: %s all@." t
          (String.concat " " (List.map fst all_targets));
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let chosen =
    match List.rev !targets with
    (* bare [--trace PATH] runs just the traced query, not every target *)
    | [] when !trace_path <> None -> []
    | [] -> List.map fst all_targets
    | ts -> ts
  in
  Format.printf
    "Nested Fuzzy SQL reproduction - Section 9 experiments (scale 1/%d, \
     io_latency %gms, buffer %d pages, domains %d, engine %s)@."
    !cfg.scale (!cfg.io_latency *. 1000.0) (mem_pages !cfg) !cfg.domains
    (if !cfg.batch then "batch" else "scalar");
  List.iter (fun t -> (List.assoc t all_targets) !cfg) chosen;
  Option.iter (trace_run !cfg) !trace_path;
  write_results "BENCH_results.json";
  Format.printf "@.wrote BENCH_results.json (%d cells)@."
    (List.length !Harness.results
    + List.length !Harness.load_results
    + List.length !Harness.chaos_results
    + List.length !Harness.wal_results
    + List.length !Harness.recovery_results
    + List.length !Harness.rchaos_results
    + List.length !Harness.failover_results);
  if !Harness.results <> [] then (
    section "Run metrics";
    Format.printf "%a" Storage.Metrics.pp Harness.metrics)
