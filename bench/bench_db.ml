(** The dating-service database of the paper's running example, used by the
    Fig. 1/2 bench target (shared with the examples). *)

open Frepro
open Frepro.Relational

let term name =
  match Fuzzy.Term.lookup Fuzzy.Term.paper name with
  | Some p -> Value.Fuzzy p
  | None -> invalid_arg ("unknown paper term " ^ name)

let tuple vs d = Ftuple.make (Array.of_list vs) d

let person_schema name =
  Schema.make ~name
    [
      ("ID", Schema.TNum); ("NAME", Schema.TStr); ("AGE", Schema.TNum);
      ("INCOME", Schema.TNum);
    ]

let paper_db env =
  let catalog = Catalog.create env in
  let f =
    Relation.of_list env (person_schema "F")
      [
        tuple [ Value.Int 101; Value.Str "Ann"; term "about 35"; term "about 60K" ] 1.0;
        tuple [ Value.Int 102; Value.Str "Ann"; term "medium young"; term "medium high" ] 1.0;
        tuple [ Value.Int 103; Value.Str "Betty"; term "middle age"; term "high" ] 1.0;
        tuple [ Value.Int 104; Value.Str "Cathy"; term "about 50"; term "low" ] 1.0;
      ]
  in
  let m =
    Relation.of_list env (person_schema "M")
      [
        tuple [ Value.Int 201; Value.Str "Allen"; Value.crisp_num 24.0; term "about 25K" ] 1.0;
        tuple [ Value.Int 202; Value.Str "Allen"; term "about 50"; term "about 40K" ] 1.0;
        tuple [ Value.Int 203; Value.Str "Bill"; term "middle age"; term "high" ] 1.0;
        tuple [ Value.Int 204; Value.Str "Carl"; term "about 29"; term "medium low" ] 1.0;
      ]
  in
  Catalog.add catalog f;
  Catalog.add catalog m;
  catalog
