(** Measurement harness shared by every table/figure bench.

    Each cell of a Section 9 experiment evaluates the same type J query with
    the nested-loop method or the unnesting merge-join over generated
    relations, in a fresh storage environment, and reports the paper's
    metrics: response time (modelled as CPU + #IO x io_latency), CPU time,
    I/O count, and the sorting share of the merge-join.

    Scaling: the paper used a 2 MB buffer against 1-32 MB relations on a 1995
    SPARC/IPC. By default every size is divided by 4 (512 KB buffer = 64
    pages, relations 0.25-8 MB) so the suite finishes in minutes while
    preserving the relation : buffer ratios; where the paper's nested loop
    "takes too long to terminate" (>= 16 MB), ours is skipped the same way.
    Note that scaling n by k compresses the quadratic-vs-linear speedup by
    ~k, so the default speedups are about a quarter of the paper's;
    [--full] restores the paper's absolute sizes (and its speedup range) at
    the cost of a much longer run. *)

open Frepro
open Frepro.Relational

type config = {
  scale : int;  (** divide paper sizes by this (1 = paper scale) *)
  io_latency : float;  (** seconds per page transfer (1995 disk ~ 20 ms) *)
  seed : int;
  domains : int;  (** merge-join execution parallelism (1 = sequential) *)
  batch : bool;  (** vectorized columnar merge-join engine *)
}

(* Calibration of [io_latency]: the paper's SPARC/IPC spent ~7.8 us per
   fuzzy-predicate evaluation (501 s for 8192x8192 pairs in Table 1) against
   ~20 ms per page transfer — about 2,500 fuzzy ops per I/O. This build's
   fuzzy op costs ~0.4 us, so a period-accurate 20 ms disk would drown the
   CPU side and invert every trade-off the paper measured. The default
   latency keeps the paper's CPU : I/O ratio (20 ms scaled by the ~40x CPU
   speedup => 0.5 ms); pass [--io-latency 0.02] for the period-accurate
   disk. *)
let default_config =
  { scale = 4; io_latency = 0.0005; seed = 42; domains = 1; batch = false }

(* The paper's buffer: 2 MB of 8 KB pages, scaled. *)
let mem_pages cfg = Int.max 8 (256 / cfg.scale)

(** Tuples per paper-megabyte at 128-byte tuples. *)
let tuples_per_mb = 8192

let spec_of ~paper_mb ~tuple_bytes ~fanout cfg =
  let n = paper_mb * tuples_per_mb / cfg.scale * 128 / tuple_bytes in
  let n = Int.max 1 n in
  {
    Workload.Gen.default_spec with
    n;
    tuple_bytes;
    groups = Int.max 1 (int_of_float (float_of_int n /. fanout));
  }

type metrics = {
  response : float;  (** seconds: cpu + io * latency *)
  cpu : float;
  wall : float;  (** actual wall-clock seconds of the evaluation *)
  sort_s : float;  (** coordinator wall seconds in the Sort phase *)
  merge_s : float;  (** coordinator wall seconds in the Merge phase *)
  ios : int;
  sort_share : float;  (** fraction of response spent sorting *)
  fuzzy_ops : int;
  answer_size : int;
}

(* ------------------------------------------------------------------ *)
(* Machine-readable results: every measured cell is appended to an
   in-memory log and dumped as BENCH_results.json at the end of the run,
   so plots and regression checks don't have to scrape the tables. *)

type row = {
  row_bench : string;
  row_cell : string;
  row_method : string;
  row_engine : string;  (** ["scalar"] or ["batch"] — the executor used *)
  row_domains : int;
  row_scale : int;
  row_wall_s : float;
  row_response_s : float;
  row_cpu_s : float;
  row_ios : int;
  row_fuzzy_ops : int;
  row_answer_size : int;
  row_checksum : string;
      (** order-independent digest of the answer multiset — tuple values and
          IEEE-754 degree bits — so batch-vs-scalar and parallel-vs-sequential
          cells can be asserted bit-identical from the JSON alone *)
  mutable row_io_overhead : float;
      (** #IOs of this cell / #IOs of the same workload at domains = 1
          (1.0 when no baseline applies); the parallel engine's private
          buffer pools re-read boundary pages, and this ratio makes that
          cost explicit (see the [scaling] bench). *)
}

let results : row list ref = ref []

(* One row per (client count) cell of the closed-loop server load bench.
   Latencies are exact percentiles over every completed query in the cell
   (not histogram-bucket approximations). *)
type load_row = {
  l_clients : int;
  l_workers : int;
  l_domains : int;
  l_engine : string;
  l_queries : int;  (** completed with a verified-correct answer *)
  l_wrong : int;  (** completed but answer differed from sequential truth *)
  l_overloaded : int;  (** admission rejections (retried) *)
  l_qps : float;
  l_p50_ms : float;
  l_p99_ms : float;
  l_duration_s : float;
}

let load_results : load_row list ref = ref []

(* One row per (fault seed, fault probability) cell of the chaos bench.
   [c_ok] queries completed with an answer bit-identical to the fault-free
   sequential engine; [c_leaked] is [accepted - (completed + cancelled +
   failed + failed_transient)] read from the daemon after a full drain, so
   0 proves no worker swallowed a query. *)
type chaos_row = {
  c_engine : string;
  c_fault_seed : int;
  c_prob : float;  (** per-I/O-site injection probability of the cell *)
  c_spec : string;  (** the armed fault spec, [Fault.spec_to_string] form *)
  c_ok : int;
  c_wrong : int;
  c_retryable : int;  (** client exhausted its retries on [Retryable] *)
  c_failed : int;
  c_cancelled : int;
  c_overloaded : int;  (** terminal [Overloaded] after client retries *)
  c_injected : int;  (** faults the planes actually fired *)
  c_retries : int;  (** server-side backoff retries *)
  c_respawns : int;
  c_breaker_opened : int;
  c_shed : int;  (** admissions shed by the open breaker *)
  c_leaked : int;
  c_duration_s : float;
}

let chaos_results : chaos_row list ref = ref []

(* One row per (sync mode, thread count) cell of the WAL commit-throughput
   bench. [w_fsyncs] against [w_commits] shows the group-commit batching
   factor. *)
type wal_row = {
  w_mode : string;  (** ["always"] | ["group"] | ["never"] *)
  w_threads : int;
  w_commits : int;
  w_fsyncs : int;
  w_qps : float;
  w_duration_s : float;
}

let wal_results : wal_row list ref = ref []

(* One row per measured restart of the recovery bench: WAL length in,
   recovery time out. *)
type recovery_row = {
  r_cell : string;
  r_wal_records : int;
  r_replayed : int;
  r_pages_redone : int;
  r_wal_bytes : int;
  r_clean : bool;
  r_ms : float;
}

let recovery_results : recovery_row list ref = ref []

(* One row per fault seed of the crash-recovery chaos harness: a forked
   fsqld-style writer SIGKILLed mid-workload, then recovered. [rc_match]
   asserts the recovered relation is bit-identical (order-independent
   checksum) to the same committed prefix rebuilt in-memory;
   [rc_torn_undetected] counts manifest-live pages that fail trailer
   validation after recovery (must be 0). *)
type rchaos_row = {
  rc_seed : int;
  rc_kill_after_s : float;
  rc_committed_batches : int;  (** child's last durably-acked batch *)
  rc_recovered_tuples : int;
  rc_checksum : string;
  rc_match : bool;
  rc_torn_undetected : int;
  rc_recover_ms : float;
}

let rchaos_results : rchaos_row list ref = ref []

(* One row per seed of the WAL-shipping failover chaos harness: a forked
   primary streams its log to an in-process replica and is SIGKILLed
   mid-load; the replica is promoted and must hold a bit-identical
   committed prefix covering every batch the primary acknowledged only
   after the replica acked it (semi-sync). [f_fenced_sender] /
   [f_fenced_replica] count both directions of the epoch fence firing in
   the zombie drill (each must be >= 1). *)
type failover_row = {
  f_seed : int;
  f_kill_after_s : float;
  f_acked_batches : int;  (** batches acked only after replica apply *)
  f_recovered_tuples : int;  (** tuples served by the promoted replica *)
  f_checksum : string;
  f_match : bool;
  f_epoch : int;  (** epoch after promotion (must be 2) *)
  f_fenced_sender : int;
  f_fenced_replica : int;
  f_queries_ok : int;  (** client queries answered across the failover *)
  f_duration_s : float;
}

let failover_results : failover_row list ref = ref []

(* Run-wide metrics registry: one observation per measured cell. The
   summary is printed (and dumped as JSON) at the end of the bench run. *)
let metrics = Storage.Metrics.create ()

(* Order-independent answer digest: each tuple hashes to a 64-bit value
   (MD5 over its printed attribute values and the raw IEEE-754 bits of its
   degree) and the tuple hashes are combined with addition, so two engines
   producing the same multiset of answers — possibly in different tie
   orders after their sorts — get the same checksum, and any flipped degree
   bit changes it. *)
let checksum_of_rows rows =
  let acc = ref 0L in
  List.iter
    (fun (values, degree_bits) ->
      let buf = Buffer.create 64 in
      List.iter
        (fun v ->
          Buffer.add_string buf v;
          Buffer.add_char buf '\x00')
        values;
      Buffer.add_string buf (Printf.sprintf "%Lx" degree_bits);
      let d = Digest.string (Buffer.contents buf) in
      let h = ref 0L in
      for i = 0 to 7 do
        h := Int64.logor (Int64.shift_left !h 8)
               (Int64.of_int (Char.code d.[i]))
      done;
      acc := Int64.add !acc !h)
    rows;
  Printf.sprintf "%016Lx" !acc

(* Rows received over the wire carry the same printed values and degree
   bits the engine produced, so [checksum_of_rows] on a client's answer
   equals [answer_checksum] on the relation — the telemetry bench uses
   that to compare daemon-served answers against engine cells. *)
let answer_checksum rel =
  let rows = ref [] in
  Relation.iter rel (fun t ->
      rows :=
        ( Array.to_list (Array.map Value.to_string t.Ftuple.values),
          Int64.bits_of_float (Ftuple.degree t) )
        :: !rows);
  checksum_of_rows !rows

let engines = [ "scalar"; "batch" ]

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_results path =
  let oc = open_out path in
  let rows = List.rev !results in
  let loads = List.rev !load_results in
  let chaos = List.rev !chaos_results in
  let wals = List.rev !wal_results in
  let recoveries = List.rev !recovery_results in
  let rchaos = List.rev !rchaos_results in
  let failovers = List.rev !failover_results in
  (* Every emitted row — measurement, load, chaos — must carry a valid
     engine tag; regression tooling groups on it, so fail loudly here
     rather than emit an untagged row. *)
  List.iter
    (fun r ->
      if not (List.mem r.row_engine engines) then
        invalid_arg ("write_results: bad engine tag " ^ r.row_engine))
    rows;
  List.iter
    (fun l ->
      if not (List.mem l.l_engine engines) then
        invalid_arg ("write_results: bad engine tag " ^ l.l_engine))
    loads;
  List.iter
    (fun c ->
      if not (List.mem c.c_engine engines) then
        invalid_arg ("write_results: bad engine tag " ^ c.c_engine))
    chaos;
  let total =
    List.length rows + List.length loads + List.length chaos
    + List.length wals + List.length recoveries + List.length rchaos
    + List.length failovers
  in
  let emitted = ref 0 in
  let sep () =
    incr emitted;
    if !emitted = total then "" else ","
  in
  output_string oc "[\n";
  List.iter
    (fun r ->
      Printf.fprintf oc
        "  {\"bench\": \"%s\", \"cell\": \"%s\", \"method\": \"%s\", \
         \"engine\": \"%s\", \"domains\": %d, \"scale\": %d, \"wall_s\": \
         %.6f, \"response_s\": %.6f, \"cpu_s\": %.6f, \"ios\": %d, \
         \"fuzzy_ops\": %d, \"answer_size\": %d, \"checksum\": \"%s\", \
         \"io_overhead\": %.4f}%s\n"
        (json_escape r.row_bench) (json_escape r.row_cell)
        (json_escape r.row_method) (json_escape r.row_engine) r.row_domains
        r.row_scale r.row_wall_s r.row_response_s r.row_cpu_s r.row_ios
        r.row_fuzzy_ops r.row_answer_size (json_escape r.row_checksum)
        r.row_io_overhead (sep ()))
    rows;
  List.iter
    (fun l ->
      Printf.fprintf oc
        "  {\"bench\": \"load\", \"engine\": \"%s\", \"clients\": %d, \
         \"workers\": %d, \"domains\": %d, \"queries\": %d, \"wrong\": %d, \
         \"overloaded\": %d, \"qps\": %.2f, \"p50_ms\": %.3f, \"p99_ms\": \
         %.3f, \"duration_s\": %.3f}%s\n"
        (json_escape l.l_engine) l.l_clients l.l_workers l.l_domains
        l.l_queries l.l_wrong l.l_overloaded l.l_qps l.l_p50_ms l.l_p99_ms
        l.l_duration_s (sep ()))
    loads;
  List.iter
    (fun c ->
      Printf.fprintf oc
        "  {\"bench\": \"chaos\", \"engine\": \"%s\", \"fault_seed\": %d, \
         \"prob\": %g, \"spec\": \"%s\", \"ok\": %d, \"wrong\": %d, \"retryable\": %d, \"failed\": \
         %d, \"cancelled\": %d, \"overloaded\": %d, \"injected\": %d, \
         \"retries\": %d, \"respawns\": %d, \"breaker_opened\": %d, \
         \"shed\": %d, \"leaked_workers\": %d, \"duration_s\": %.3f}%s\n"
        (json_escape c.c_engine) c.c_fault_seed c.c_prob (json_escape c.c_spec)
        c.c_ok c.c_wrong
        c.c_retryable c.c_failed c.c_cancelled c.c_overloaded c.c_injected
        c.c_retries c.c_respawns c.c_breaker_opened c.c_shed c.c_leaked
        c.c_duration_s (sep ()))
    chaos;
  List.iter
    (fun w ->
      Printf.fprintf oc
        "  {\"bench\": \"wal\", \"mode\": \"%s\", \"threads\": %d, \
         \"commits\": %d, \"fsyncs\": %d, \"commit_qps\": %.1f, \
         \"duration_s\": %.3f}%s\n"
        (json_escape w.w_mode) w.w_threads w.w_commits w.w_fsyncs w.w_qps
        w.w_duration_s (sep ()))
    wals;
  List.iter
    (fun r ->
      Printf.fprintf oc
        "  {\"bench\": \"recovery\", \"cell\": \"%s\", \"wal_records\": %d, \
         \"replayed\": %d, \"pages_redone\": %d, \"wal_bytes\": %d, \
         \"clean\": %b, \"recovery_ms\": %.3f}%s\n"
        (json_escape r.r_cell) r.r_wal_records r.r_replayed r.r_pages_redone
        r.r_wal_bytes r.r_clean r.r_ms (sep ()))
    recoveries;
  List.iter
    (fun c ->
      Printf.fprintf oc
        "  {\"bench\": \"recovery_chaos\", \"fault_seed\": %d, \
         \"kill_after_s\": %.3f, \"committed_batches\": %d, \
         \"recovered_tuples\": %d, \"checksum\": \"%s\", \"match\": %b, \
         \"torn_undetected\": %d, \"recovery_ms\": %.3f}%s\n"
        c.rc_seed c.rc_kill_after_s c.rc_committed_batches
        c.rc_recovered_tuples (json_escape c.rc_checksum) c.rc_match
        c.rc_torn_undetected c.rc_recover_ms (sep ()))
    rchaos;
  List.iter
    (fun f ->
      Printf.fprintf oc
        "  {\"bench\": \"failover_chaos\", \"fault_seed\": %d, \
         \"kill_after_s\": %.3f, \"acked_batches\": %d, \
         \"recovered_tuples\": %d, \"checksum\": \"%s\", \"match\": %b, \
         \"epoch\": %d, \"fenced_sender\": %d, \"fenced_replica\": %d, \
         \"queries_ok\": %d, \"duration_s\": %.3f}%s\n"
        f.f_seed f.f_kill_after_s f.f_acked_batches f.f_recovered_tuples
        (json_escape f.f_checksum) f.f_match f.f_epoch f.f_fenced_sender
        f.f_fenced_replica f.f_queries_ok f.f_duration_s (sep ()))
    failovers;
  output_string oc "]\n";
  close_out oc

(* The canonical type J query of the experiments (Section 9 uses type J to
   illustrate): correlated IN subquery joining on the fuzzy attribute X. *)
let bench_sql = "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.W <= R.W)"

type method_ = Nested_loop | Merge_join

let method_name = function
  | Nested_loop -> "Nested Loop"
  | Merge_join -> "Merge-join"

let run_cell ?(bench = "adhoc") ?(cell = "") ?trace cfg ~outer ~inner method_ =
  let env = Storage.Env.create ~pool_pages:(mem_pages cfg) () in
  let r, s = Workload.Gen.join_pair env ~seed:cfg.seed ~outer ~inner in
  let catalog = Catalog.create env in
  Catalog.add catalog r;
  Catalog.add catalog s;
  let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper bench_sql in
  let shape =
    match Unnest.Classify.classify q with
    | Unnest.Classify.Two_level shape -> shape
    | other ->
        failwith ("bench query misclassified as " ^ Unnest.Classify.to_string other)
  in
  let stats = env.Storage.Env.stats in
  Storage.Env.reset_stats env;
  let wall_start = Unix.gettimeofday () in
  let answer =
    Storage.Iostats.timed stats Storage.Iostats.Other (fun () ->
        match method_ with
        | Nested_loop ->
            Unnest.Nl_exec.run ?trace shape ~mem_pages:(mem_pages cfg)
        | Merge_join ->
            if cfg.domains > 1 then
              Storage.Task_pool.with_pool ~domains:cfg.domains (fun pool ->
                  Unnest.Merge_exec.run ~pool ?trace ~batch:cfg.batch shape
                    ~mem_pages:(mem_pages cfg))
            else
              Unnest.Merge_exec.run ?trace ~batch:cfg.batch shape
                ~mem_pages:(mem_pages cfg))
  in
  let wall = Unix.gettimeofday () -. wall_start in
  let cpu = Storage.Iostats.cpu_seconds stats in
  let ios = Storage.Iostats.total_ios stats in
  let response = cpu +. (float_of_int ios *. cfg.io_latency) in
  let sort_time =
    Storage.Iostats.phase_seconds stats Storage.Iostats.Sort
    +. (float_of_int (Storage.Iostats.phase_ios stats Storage.Iostats.Sort)
       *. cfg.io_latency)
  in
  let m =
    {
      response;
      cpu;
      wall;
      sort_s = Storage.Iostats.phase_seconds stats Storage.Iostats.Sort;
      merge_s = Storage.Iostats.phase_seconds stats Storage.Iostats.Merge;
      ios;
      sort_share = (if response > 0.0 then sort_time /. response else 0.0);
      fuzzy_ops = Storage.Iostats.fuzzy_ops stats;
      answer_size = Relation.cardinality answer;
    }
  in
  results :=
    {
      row_bench = bench;
      row_cell = cell;
      row_method = method_name method_;
      row_engine =
        (match method_ with
        | Merge_join when cfg.batch -> "batch"
        | _ -> "scalar");
      row_domains = (match method_ with Merge_join -> cfg.domains | Nested_loop -> 1);
      row_scale = cfg.scale;
      row_wall_s = m.wall;
      row_response_s = m.response;
      row_cpu_s = m.cpu;
      row_ios = m.ios;
      row_fuzzy_ops = m.fuzzy_ops;
      row_answer_size = m.answer_size;
      row_checksum = answer_checksum answer;
      row_io_overhead = 1.0;
    }
    :: !results;
  Storage.Metrics.incr (Storage.Metrics.counter metrics "cells");
  Storage.Metrics.incr
    (Storage.Metrics.counter metrics
       (match method_ with
       | Nested_loop -> "cells_nested_loop"
       | Merge_join -> "cells_merge_join"));
  Storage.Metrics.incr ~by:m.ios (Storage.Metrics.counter metrics "ios");
  Storage.Metrics.incr ~by:m.fuzzy_ops
    (Storage.Metrics.counter metrics "fuzzy_ops");
  Storage.Metrics.observe (Storage.Metrics.histogram metrics "wall_s") m.wall;
  Storage.Metrics.observe
    (Storage.Metrics.histogram metrics "response_s")
    m.response;
  Storage.Metrics.observe
    (Storage.Metrics.histogram metrics "answer_size")
    (float_of_int m.answer_size);
  m

(* Stamp the parallel-I/O-overhead ratio onto the recorded rows of one
   bench at a given domain count (the [scaling] bench computes the ratio
   once its domains = 1 baseline is known; reps of a cell share it, page
   counts being deterministic). *)
let record_io_overhead ~bench ~domains ratio =
  List.iter
    (fun r ->
      if r.row_bench = bench && r.row_domains = domains then
        r.row_io_overhead <- ratio)
    !results

(* Scratch data directories for the durable-storage benches. *)
let temp_dir_counter = ref 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_temp_dir f =
  incr temp_dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "frepro-bench-%d-%d" (Unix.getpid ()) !temp_dir_counter)
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let str_seconds s =
  if s >= 100.0 then Printf.sprintf "%.0f" s
  else if s >= 1.0 then Printf.sprintf "%.1f" s
  else Printf.sprintf "%.3f" s

let hr ppf width = Format.fprintf ppf "%s@." (String.make width '-')
