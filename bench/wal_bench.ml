(** WAL bench: commit throughput with and without group commit, and
    recovery time as a function of log length.

    The throughput half measures raw [Wal.commit] cost per sync mode x
    committer-thread count: [always] pays one fsync per commit, [group]
    lets concurrent committers share a leader's fsync (the interesting
    cell — its fsyncs/commits ratio drops as threads grow), and [never]
    is the no-durability upper bound. The recovery half builds durable
    heaps of increasing size, crashes without a flush (so the whole
    state lives in the log), and times the redo restart. Both land as
    ["wal"] / ["recovery"] rows in BENCH_results.json. *)

open Frepro
open Frepro.Storage
open Harness

let section title = Format.printf "@.==== %s ====@." title
let note fmt = Format.printf fmt

let commit_cell ~mode ~threads ~total =
  with_temp_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let wal = Wal.create ~path:(Recovery.wal_path_of dir) ~mode in
      let per_thread = total / threads in
      let t0 = Unix.gettimeofday () in
      let committers =
        List.init threads (fun ti ->
            Thread.create
              (fun () ->
                for k = 1 to per_thread do
                  let fid = Wal.new_file wal in
                  Wal.log_define wal ~fid
                    ~meta:(Bytes.of_string (Printf.sprintf "b%d-%d" ti k));
                  Wal.commit wal
                done)
              ())
      in
      List.iter Thread.join committers;
      let duration = Unix.gettimeofday () -. t0 in
      let commits = Wal.commits wal and fsyncs = Wal.fsyncs wal in
      Wal.close wal;
      {
        w_mode = Wal.sync_mode_name mode;
        w_threads = threads;
        w_commits = commits;
        w_fsyncs = fsyncs;
        w_qps = float_of_int commits /. Float.max 1e-9 duration;
        w_duration_s = duration;
      })

let bench_schema =
  Relational.Schema.make ~name:"W"
    [ ("ID", Relational.Schema.TNum); ("X", Relational.Schema.TNum) ]

let bench_tuples ~seed n =
  let rng = Random.State.make [| 0xBE7C; seed |] in
  List.init n (fun k ->
      Relational.Ftuple.make
        [| Relational.Value.Int k;
           Relational.Value.crisp_num (Random.State.float rng 100.0) |]
        (0.125 *. float_of_int (1 + (k mod 8))))

let recovery_cell ~seed n =
  with_temp_dir (fun dir ->
      (* Large pool, no checkpoint: every tuple reaches the device only
         through the redo pass we are timing. *)
      let env =
        Env.open_durable ~dir ~page_size:8192 ~pool_pages:4096
          ~wal_sync:Wal.Never ()
      in
      let rel = Relational.Relation.create ~durable:true env bench_schema in
      List.iter (Relational.Relation.insert rel) (bench_tuples ~seed n);
      Env.commit env;
      Env.crash env;
      let wal_bytes = (Unix.stat (Recovery.wal_path_of dir)).Unix.st_size in
      let t0 = Unix.gettimeofday () in
      let env2 = Env.open_durable ~dir () in
      let ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
      let report = Option.get (Env.recovery env2) in
      let recovered =
        match Relational.Catalog.find (Relational.Catalog.load_durable env2) "W" with
        | Some r -> Relational.Relation.cardinality r
        | None -> 0
      in
      Env.close env2;
      if recovered <> n then
        failwith
          (Printf.sprintf "recovery bench: recovered %d of %d tuples" recovered n);
      {
        r_cell = Printf.sprintf "%d-tuples" n;
        r_wal_records = report.Recovery.wal_records;
        r_replayed = report.Recovery.replayed;
        r_pages_redone = report.Recovery.pages_redone;
        r_wal_bytes = wal_bytes;
        r_clean = report.Recovery.clean;
        r_ms = ms;
      })

let run (cfg : Harness.config) =
  section "WAL - commit throughput per sync mode and committer count";
  note "always: one fsync per commit; group: concurrent committers share@.";
  note "the leader's fsync; never: no durability (upper bound)@.@.";
  let total = 512 in
  Format.printf "%-8s | %8s | %10s | %8s | %12s@." "mode" "threads"
    "commit qps" "fsyncs" "fsyncs/commit";
  hr Format.std_formatter 58;
  List.iter
    (fun mode ->
      List.iter
        (fun threads ->
          let row = commit_cell ~mode ~threads ~total in
          wal_results := row :: !wal_results;
          Format.printf "%-8s | %8d | %10.0f | %8d | %12.3f@." row.w_mode
            row.w_threads row.w_qps row.w_fsyncs
            (float_of_int row.w_fsyncs
            /. Float.max 1.0 (float_of_int row.w_commits)))
        [ 1; 4; 8 ])
    [ Wal.Always; Wal.Group; Wal.Never ];
  section "Recovery - redo restart time vs log length";
  note "durable heap built with no flush, crashed, reopened: the whole@.";
  note "state replays from the log (recovery then checkpoints, so a@.";
  note "second open is clean)@.@.";
  Format.printf "%-14s | %10s | %10s | %8s | %10s | %12s@." "tuples"
    "wal bytes" "records" "pages" "replayed" "recover (ms)";
  hr Format.std_formatter 78;
  List.iter
    (fun n ->
      let row = recovery_cell ~seed:cfg.seed n in
      recovery_results := row :: !recovery_results;
      Format.printf "%-14s | %10d | %10d | %8d | %10d | %12.2f@." row.r_cell
        row.r_wal_bytes row.r_wal_records row.r_pages_redone row.r_replayed
        row.r_ms)
    [ 200; 1000; 5000; 20000 ]
