(** The paper's motivating scenario at a realistic size: a dating-service
    database with hundreds of fuzzy profiles, exercising all nested-query
    types (N, J, JX, JALL, JA) and comparing evaluation strategies.

    Run with: [dune exec examples/dating_service.exe] *)

open Frepro
open Frepro.Relational

let rng = Random.State.make [| 2024 |]

let age_terms = [ "young"; "medium young"; "about 29"; "middle age"; "about 50" ]
let income_terms =
  [ "low"; "medium low"; "about 25K"; "about 40K"; "about 60K"; "medium high"; "high" ]

let first_names =
  [| "Ann"; "Betty"; "Cathy"; "Dana"; "Eve"; "Fay"; "Gwen"; "Hana"; "Iris";
     "Jane"; "Allen"; "Bill"; "Carl"; "Dave"; "Ed"; "Fred"; "Glen"; "Hugo";
     "Ian"; "Jack" |]

let term name = Value.Fuzzy (Option.get (Fuzzy.Term.lookup Fuzzy.Term.paper name))

let pick l = List.nth l (Random.State.int rng (List.length l))

let random_age () =
  if Random.State.bool rng then Value.crisp_num (float_of_int (18 + Random.State.int rng 45))
  else term (pick age_terms)

let random_income () =
  if Random.State.bool rng then
    Value.crisp_num (float_of_int (15 + Random.State.int rng 120))
  else term (pick income_terms)

let person_schema name =
  Schema.make ~name
    [ ("ID", Schema.TNum); ("NAME", Schema.TStr); ("AGE", Schema.TNum);
      ("INCOME", Schema.TNum) ]

let make_people env name n id0 =
  Relation.of_list env (person_schema name)
    (List.init n (fun i ->
         Ftuple.make
           [| Value.Int (id0 + i);
              Value.Str first_names.(Random.State.int rng (Array.length first_names));
              random_age (); random_income () |]
           (* How well the profile fits the service's target group. *)
           (0.5 +. Random.State.float rng 0.5)))

let () =
  let env = Storage.Env.create () in
  let catalog = Catalog.create env in
  Catalog.add catalog (make_people env "F" 300 1000);
  Catalog.add catalog (make_people env "M" 300 5000);
  let terms = Fuzzy.Term.paper in
  let run title sql =
    let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms sql in
    let shape = Unnest.Classify.to_string (Unnest.Classify.classify q) in
    let t0 = Unix.gettimeofday () in
    let answer = Unnest.Planner.run q in
    let dt = Unix.gettimeofday () -. t0 in
    Format.printf "@.--- %s (%s, %.1f ms, %d answers) ---@.%s@." title shape
      (1000.0 *. dt)
      (Relation.cardinality answer) sql;
    (* show the strongest few answers *)
    let best =
      List.sort
        (fun a b -> Float.compare (Ftuple.degree b) (Ftuple.degree a))
        (Relation.to_list answer)
    in
    List.iteri
      (fun i t -> if i < 5 then Format.printf "  %a@." Ftuple.pp t)
      best
  in
  run "couples about the same age, he earns more than medium high (flat join)"
    "SELECT F.NAME, M.NAME FROM F, M WHERE F.AGE = M.AGE AND M.INCOME > \
     'medium high' WITH D >= 0.6";
  run "women with a middle-aged man's income (type N)"
    "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME IN \
     (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')";
  run "women whose income matches some man of their age (type J)"
    "SELECT F.NAME FROM F WHERE F.INCOME IN (SELECT M.INCOME FROM M WHERE \
     M.AGE = F.AGE) WITH D >= 0.5";
  run "women whose income avoids every man of their age (type JX)"
    "SELECT F.NAME FROM F WHERE F.INCOME NOT IN (SELECT M.INCOME FROM M \
     WHERE M.AGE = F.AGE) WITH D >= 0.9";
  run "women out-earning all men of their age (type JALL)"
    "SELECT F.NAME FROM F WHERE F.INCOME > ALL (SELECT M.INCOME FROM M \
     WHERE M.AGE = F.AGE) WITH D >= 0.8";
  run "women above the average income of men their age (type JA)"
    "SELECT F.NAME FROM F WHERE F.INCOME > (SELECT AVG(M.INCOME) FROM M \
     WHERE M.AGE = F.AGE) WITH D >= 0.8";
  (* Strategy comparison on the type J query. *)
  let sql =
    "SELECT F.NAME FROM F WHERE F.INCOME IN (SELECT M.INCOME FROM M WHERE \
     M.AGE = F.AGE)"
  in
  let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms sql in
  Format.printf "@.--- strategy comparison on the type J query ---@.";
  List.iter
    (fun strat ->
      let t0 = Unix.gettimeofday () in
      let answer = Unnest.Planner.run ~strategy:strat q in
      let dt = Unix.gettimeofday () -. t0 in
      Format.printf "  %-18s %8.1f ms  (%d answers)@."
        (Unnest.Planner.strategy_to_string strat)
        (1000.0 *. dt)
        (Relation.cardinality answer))
    [ Unnest.Planner.Naive; Unnest.Planner.Nested_loop; Unnest.Planner.Unnest_merge ]
