(** Quickstart: build a tiny fuzzy database, run the paper's nested Query 2,
    and watch the unnesting planner at work.

    Run with: [dune exec examples/quickstart.exe] *)

open Frepro
open Frepro.Relational

let () =
  (* 1. A storage environment: simulated 8 KB-page disk + 2 MB buffer pool. *)
  let env = Storage.Env.create () in
  let catalog = Catalog.create env in

  (* 2. Two fuzzy relations. Attribute values may be crisp numbers, strings,
     or possibility distributions; every tuple carries a membership degree
     D in (0, 1]. *)
  let term name = Value.Fuzzy (Option.get (Fuzzy.Term.lookup Fuzzy.Term.paper name)) in
  let tuple vs d = Ftuple.make (Array.of_list vs) d in
  let person name =
    Schema.make ~name
      [ ("ID", Schema.TNum); ("NAME", Schema.TStr); ("AGE", Schema.TNum);
        ("INCOME", Schema.TNum) ]
  in
  let f =
    Relation.of_list env (person "F")
      [
        tuple [ Value.Int 101; Value.Str "Ann"; term "about 35"; term "about 60K" ] 1.0;
        tuple [ Value.Int 102; Value.Str "Ann"; term "medium young"; term "medium high" ] 1.0;
        tuple [ Value.Int 103; Value.Str "Betty"; term "middle age"; term "high" ] 1.0;
        tuple [ Value.Int 104; Value.Str "Cathy"; term "about 50"; term "low" ] 1.0;
      ]
  in
  let m =
    Relation.of_list env (person "M")
      [
        tuple [ Value.Int 201; Value.Str "Allen"; Value.crisp_num 24.0; term "about 25K" ] 1.0;
        tuple [ Value.Int 202; Value.Str "Allen"; term "about 50"; term "about 40K" ] 1.0;
        tuple [ Value.Int 203; Value.Str "Bill"; term "middle age"; term "high" ] 1.0;
        tuple [ Value.Int 204; Value.Str "Carl"; term "about 29"; term "medium low" ] 1.0;
      ]
  in
  Catalog.add catalog f;
  Catalog.add catalog m;

  (* 3. A nested Fuzzy SQL query (the paper's Query 2): medium young women
     with a middle-aged man's income. *)
  let sql =
    "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME IN \
     (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')"
  in
  let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql in

  (* 4. The classifier recognises the nesting type; the planner unnests it
     and evaluates the flat equivalent with the extended merge-join. *)
  Format.printf "query shape : %s@."
    (Unnest.Classify.to_string (Unnest.Classify.classify q));
  let answer = Unnest.Planner.run q in
  Format.printf "answer      : %a@." Relation.pp answer;

  (* 5. The same answer comes out of the naive nested evaluation — that is
     Theorem 4.1 — just slower on anything bigger than this demo. *)
  let naive = Unnest.Planner.run ~strategy:Unnest.Planner.Naive q in
  Format.printf "naive check : %a@." Relation.pp naive
