(** The paper's Appendix, executably: what does a fuzzy query *mean*?

    Given R(X, Y) with crisp tuples and S(Y, Z) whose Y is the discrete
    possibility distribution 1/y1 + 0.8/y2, the paper's single-measure
    semantics answers "select R.X from R, S where R.Y = S.Y" with ONE fuzzy
    relation: every R.X that possibly joins, graded by its possibility.

    The Appendix contrasts this with the tempting "world enumeration"
    interpretation — instantiate each ill-known value with one of its
    possible values, answer each world separately — and rejects it: the
    answer becomes a fuzzy set of fuzzy sets that explodes combinatorially
    and still does not tell the user anything more. This example computes
    both and prints the paper's exact numbers.

    Run with: [dune exec examples/appendix_semantics.exe] *)

open Frepro
open Frepro.Relational

let t vs = Ftuple.make (Array.of_list vs) 1.0

let () =
  let env = Storage.Env.create () in
  let catalog = Catalog.create env in
  let r_schema = Schema.make ~name:"R" [ ("X", Schema.TStr); ("Y", Schema.TNum) ] in
  let s_schema = Schema.make ~name:"S" [ ("Y", Schema.TNum); ("Z", Schema.TStr) ] in
  let crisp = Value.crisp_num in
  (* The Appendix's second example: four R-tuples, two ill-known S-tuples. *)
  let r =
    Relation.of_list env r_schema
      [
        t [ Value.Str "x1"; crisp 1. ];
        t [ Value.Str "x2"; crisp 2. ];
        t [ Value.Str "x3"; crisp 3. ];
        t [ Value.Str "x4"; crisp 4. ];
      ]
  in
  let s =
    Relation.of_list env s_schema
      [
        t
          [ Value.Fuzzy (Fuzzy.Possibility.discrete [ (1., 1.0); (2., 0.8) ]);
            Value.Str "z1" ];
        t
          [ Value.Fuzzy (Fuzzy.Possibility.discrete [ (3., 0.9); (4., 0.7) ]);
            Value.Str "z2" ];
      ]
  in
  Catalog.add catalog r;
  Catalog.add catalog s;

  (* 1. The paper's semantics: one fuzzy answer relation. *)
  let answer =
    Unnest.Planner.run_string ~catalog ~terms:Fuzzy.Term.empty
      "SELECT R.X FROM R, S WHERE R.Y = S.Y"
  in
  Format.printf
    "single-measure semantics (the paper's): one fuzzy relation@.%a@."
    Relation.pp answer;

  (* 2. The rejected interpretation: enumerate every assignment of a precise
     value to each ill-known S.Y, evaluate each world crisply. *)
  Format.printf
    "world-enumeration interpretation (rejected by the Appendix):@.";
  let worlds = ref 0 in
  let s1_choices = [ (1.0, 1.0); (2.0, 0.8) ] in
  let s2_choices = [ (3.0, 0.9); (4.0, 0.7) ] in
  List.iter
    (fun (v1, d1) ->
      List.iter
        (fun (v2, d2) ->
          incr worlds;
          let matches =
            List.filter_map
              (fun tup ->
                match (Ftuple.value tup 0, Ftuple.value tup 1) with
                | Value.Str x, y
                  when Value.equal y (crisp v1) || Value.equal y (crisp v2) ->
                    let d = if Value.equal y (crisp v1) then d1 else d2 in
                    Some (Printf.sprintf "%.1f/%s" d x)
                | _ -> None)
              (Relation.to_list r)
          in
          Format.printf "  world %d (S1.Y=%g, S2.Y=%g): { %s }@." !worlds v1 v2
            (String.concat ", " matches))
        s2_choices)
    s1_choices;
  Format.printf
    "-> %d answer *sets* for 2 ill-known values; with possibility density@.\
    \   functions the enumeration would be infinite, and the operations can@.\
    \   no longer be composed — the paper's argument for the single measure.@."
    !worlds
