(** The paper's Query 4: "the name of employees of the Sales department who
    do not have an income of any employee of the Research department with
    his/her age" — a type JX query (NOT IN with correlation), unnested via
    the grouped MIN(D) of Theorem 5.1.

    Run with: [dune exec examples/employee_antijoin.exe] *)

open Frepro
open Frepro.Relational

let emp_schema name =
  Schema.make ~name
    [ ("NAME", Schema.TStr); ("AGE", Schema.TNum); ("INCOME", Schema.TNum) ]

let term name = Value.Fuzzy (Option.get (Fuzzy.Term.lookup Fuzzy.Term.paper name))
let about v s = Value.Fuzzy (Fuzzy.Possibility.about v ~spread:s)

let emp name age income = Ftuple.make [| Value.Str name; age; income |] 1.0

let () =
  let env = Storage.Env.create () in
  let catalog = Catalog.create env in
  Catalog.add catalog
    (Relation.of_list env (emp_schema "EMP_SALES")
       [
         emp "Smith" (about 28. 3.) (term "about 40K");
         emp "Jones" (term "middle age") (term "high");
         emp "Lopez" (about 52. 4.) (term "medium low");
         emp "Chen" (term "medium young") (term "about 60K");
       ]);
  Catalog.add catalog
    (Relation.of_list env (emp_schema "EMP_RESEARCH")
       [
         emp "Adams" (about 29. 3.) (term "about 40K");
         emp "Baker" (term "middle age") (term "medium high");
         emp "Costa" (about 50. 5.) (term "low");
       ]);
  let sql =
    "SELECT R.NAME FROM EMP_SALES R WHERE R.INCOME NOT IN (SELECT S.INCOME \
     FROM EMP_RESEARCH S WHERE S.AGE = R.AGE)"
  in
  let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql in
  Format.printf "Query 4 of the paper:@.%s@.@." sql;
  Format.printf "classified as: %s@.@."
    (Unnest.Classify.to_string (Unnest.Classify.classify q));
  Format.printf "unnested (merge-join over the antijoin group-min):@.%a@."
    Relation.pp
    (Unnest.Planner.run ~strategy:Unnest.Planner.Unnest_merge q);
  Format.printf "naive evaluation agrees (Theorem 5.1):@.%a@." Relation.pp
    (Unnest.Planner.run ~strategy:Unnest.Planner.Naive q);
  (* Smith's degree is low: Adams has about his age AND about his income.
     Jones avoids Baker's income band more strongly. Thresholding keeps the
     confident answers only. *)
  let strict =
    Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper
      (sql ^ " WITH D >= 0.5")
  in
  Format.printf "with WITH D >= 0.5:@.%a@." Relation.pp (Unnest.Planner.run strict)
