(** A guided, executable walkthrough of the paper, section by section.

    Run with: [dune exec examples/paper_walkthrough.exe]

    Every number printed here also appears in the paper (Figs. 1-2,
    Example 4.1, the worked semantics of Sections 4-8); the walkthrough
    recomputes them live against the library. *)

open Frepro
open Frepro.Relational

let heading title = Format.printf "@.=== %s ===@.@." title

let g name = Option.get (Fuzzy.Term.lookup Fuzzy.Term.paper name)

let section_2 () =
  heading "Section 2 - fuzzy sets, possibility, satisfaction degrees";
  Format.printf
    "A fuzzy value restricts the possible values of ill-known data.@.";
  Format.printf "mu_medium_young(24) = %g   (the paper: 0.8)@."
    (Fuzzy.Possibility.mem (g "medium young") 24.0);
  Format.printf "mu_medium_young(23) = %g   (the paper: 0.6)@."
    (Fuzzy.Possibility.mem (g "medium young") 23.0);
  Format.printf
    "d(about35 = medium young) = %g   (Fig. 1's 0.5 intersection)@."
    (Fuzzy.Fuzzy_compare.degree Fuzzy.Fuzzy_compare.Eq (g "about 35")
       (g "medium young"));
  Format.printf
    "@.Why possibility only? The double-measure alternative (Sec. 2.2):@.";
  let m = Fuzzy.Necessity.both Fuzzy.Fuzzy_compare.Eq (g "about 35") (g "medium young") in
  Format.printf
    "  %a - a second answer relation per operation, so algebra cannot@.\
    \  compose and nested queries cannot be unnested.@."
    Fuzzy.Necessity.pp_measured m

let section_3 () =
  heading "Section 3 - the extended merge-join";
  Format.printf
    "Hash joins need equal keys; fuzzy values join by overlapping supports.@.";
  Format.printf
    "Definition 3.1 orders values by (support start, support end):@.";
  (* Example 3.1 of the paper *)
  let v name a b = (name, Fuzzy.Possibility.trap (Fuzzy.Trapezoid.make a a b b)) in
  let vals = [ v "r1.X" 30. 35.; v "r2.X" 20. 28.; v "r3.X" 20. 35. ] in
  let sorted =
    List.sort (fun (_, p) (_, q) -> Fuzzy.Interval_order.compare p q) vals
  in
  Format.printf "  Example 3.1 sorted: %s   (the paper: r2.X < r3.X < r1.X)@."
    (String.concat " < " (List.map fst sorted));
  Format.printf
    "The sweep examines, per outer tuple r, exactly the window Rng(r);@.\
     dangling tuples (paper's [10,35] vs [30,40] example) are scanned but@.\
     never matched - see test/test_joins.ml.@."

let paper_db env =
  let catalog = Catalog.create env in
  let term name = Value.Fuzzy (g name) in
  let tuple vs d = Ftuple.make (Array.of_list vs) d in
  let person name =
    Schema.make ~name
      [ ("ID", Schema.TNum); ("NAME", Schema.TStr); ("AGE", Schema.TNum);
        ("INCOME", Schema.TNum) ]
  in
  Catalog.add catalog
    (Relation.of_list env (person "F")
       [
         tuple [ Value.Int 101; Value.Str "Ann"; term "about 35"; term "about 60K" ] 1.0;
         tuple [ Value.Int 102; Value.Str "Ann"; term "medium young"; term "medium high" ] 1.0;
         tuple [ Value.Int 103; Value.Str "Betty"; term "middle age"; term "high" ] 1.0;
         tuple [ Value.Int 104; Value.Str "Cathy"; term "about 50"; term "low" ] 1.0;
       ]);
  Catalog.add catalog
    (Relation.of_list env (person "M")
       [
         tuple [ Value.Int 201; Value.Str "Allen"; Value.crisp_num 24.0; term "about 25K" ] 1.0;
         tuple [ Value.Int 202; Value.Str "Allen"; term "about 50"; term "about 40K" ] 1.0;
         tuple [ Value.Int 203; Value.Str "Bill"; term "middle age"; term "high" ] 1.0;
         tuple [ Value.Int 204; Value.Str "Carl"; term "about 29"; term "medium low" ] 1.0;
       ]);
  catalog

let example_4_1 () =
  heading "Sections 4-5 - Example 4.1, live";
  let env = Storage.Env.create () in
  let catalog = paper_db env in
  let run sql =
    Unnest.Planner.run
      (Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql)
  in
  Format.printf "Query 2 (type N): medium young women with a middle-aged \
                 man's income.@.";
  let t = run "SELECT M.INCOME FROM M WHERE M.AGE = 'middle age'" in
  Format.printf "T (inner block, the paper's table): %a@." Relation.pp t;
  let answer =
    run
      "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME IN \
       (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')"
  in
  Format.printf "Answer (the paper: Ann 0.7, Betty 0.7): %a@." Relation.pp answer;
  Format.printf "Query 4 (type JX) rewrite, as the paper presents it:@.";
  let q4 =
    Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper
      "SELECT F.NAME FROM F WHERE F.INCOME NOT IN (SELECT M.INCOME FROM M \
       WHERE M.AGE = F.AGE)"
  in
  print_string (Unnest.Explain.explain q4)

let sections_6_7 () =
  heading "Sections 6-7 - aggregates and quantifiers";
  let env = Storage.Env.create () in
  let catalog = paper_db env in
  let explain sql =
    print_string
      (Unnest.Explain.explain
         (Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper sql))
  in
  Format.printf "Query 5 (type JA) pipelines T1 / T2 / JA':@.";
  explain
    "SELECT F.NAME FROM F WHERE F.INCOME > (SELECT MAX(M.INCOME) FROM M \
     WHERE M.AGE = F.AGE)";
  Format.printf "@.The ALL quantifier becomes a grouped MIN over a negated \
                 term (Thm 7.1):@.";
  explain
    "SELECT F.NAME FROM F WHERE F.INCOME < ALL (SELECT M.INCOME FROM M WHERE \
     M.AGE = F.AGE)"

let section_8 () =
  heading "Section 8 - chain queries";
  let env = Storage.Env.create () in
  let catalog = Catalog.create env in
  let add name n seed =
    Catalog.add catalog
      (Workload.Gen.relation env ~seed ~name
         { Workload.Gen.default_spec with n; groups = Int.max 1 (n / 5) })
  in
  add "R1" 60 1;
  add "R2" 60 2;
  add "R3" 12 3;
  let q =
    Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.paper
      "SELECT R1.ID FROM R1 WHERE R1.X IN (SELECT R2.X FROM R2 WHERE R2.W <= \
       R1.W AND R2.X IN (SELECT R3.X FROM R3 WHERE R3.X = R2.X AND R3.W >= \
       R1.W))"
  in
  print_string (Unnest.Explain.explain q);
  let answer = Unnest.Planner.run q in
  let naive = Unnest.Planner.run ~strategy:Unnest.Planner.Naive q in
  Format.printf "unnested answer = naive answer: %b (%d tuples)@."
    (Relation.cardinality answer = Relation.cardinality naive)
    (Relation.cardinality answer)

let section_9 () =
  heading "Section 9 - the experiments";
  Format.printf
    "Run `dune exec bench/main.exe` to regenerate Tables 1-4 and Figs. 1-3;@.\
     EXPERIMENTS.md records a full run against the paper's numbers.@."

let () =
  Format.printf
    "Efficient Processing of Nested Fuzzy SQL Queries - a walkthrough@.";
  section_2 ();
  section_3 ();
  example_4_1 ();
  sections_6_7 ();
  section_8 ();
  section_9 ()
