(** The paper's Query 5: "names of cities in region A, each of which has an
    average household-income greater than the maximum average
    household-income of cities in region B with similar population" — a type
    JA nested query whose unnesting pipelines T1 / T2 / JA' (Section 6).

    Census-style data is inherently imprecise: populations and mean incomes
    are published as ranges, which is exactly what trapezoidal possibility
    distributions model.

    Run with: [dune exec examples/city_income.exe] *)

open Frepro
open Frepro.Relational

let city_schema name =
  Schema.make ~name
    [ ("NAME", Schema.TStr); ("POPULATION", Schema.TNum);
      ("AVE_HOME_INCOME", Schema.TNum) ]

(* population in thousands, as "roughly p (+/- spread)" *)
let about v spread = Value.Fuzzy (Fuzzy.Possibility.about v ~spread)

let city name pop pop_spread income income_spread =
  Ftuple.make
    [| Value.Str name; about pop pop_spread; about income income_spread |]
    1.0

let () =
  let env = Storage.Env.create () in
  let catalog = Catalog.create env in
  Catalog.add catalog
    (Relation.of_list env (city_schema "CITIES_REGION_A")
       [
         city "Avalon" 120. 15. 58. 6.;
         city "Brookfield" 480. 40. 72. 8.;
         city "Carson" 95. 10. 41. 5.;
         city "Dunmore" 300. 25. 66. 7.;
         city "Eastvale" 210. 20. 49. 5.;
       ]);
  Catalog.add catalog
    (Relation.of_list env (city_schema "CITIES_REGION_B")
       [
         city "Fairport" 110. 12. 52. 6.;
         city "Glenn" 450. 35. 69. 7.;
         city "Harmony" 100. 10. 45. 4.;
         city "Ironton" 320. 30. 61. 6.;
         city "Jasper" 205. 18. 50. 5.;
         city "Kent" 90. 8. 39. 4.;
       ]);
  let sql =
    "SELECT R.NAME FROM CITIES_REGION_A R WHERE R.AVE_HOME_INCOME > (SELECT \
     MAX(S.AVE_HOME_INCOME) FROM CITIES_REGION_B S WHERE S.POPULATION = \
     R.POPULATION)"
  in
  let q = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.empty sql in
  Format.printf "Query 5 of the paper:@.%s@.@." sql;
  Format.printf "classified as: %s@.@."
    (Unnest.Classify.to_string (Unnest.Classify.classify q));
  let answer = Unnest.Planner.run q in
  Format.printf "answer (possibility that the city out-earns every \
                 similarly-sized region-B city):@.%a@."
    Relation.pp answer;
  (* Compare against COUNT semantics: cities with at least two comparably
     sized region-B peers (COUNT over an empty group compares with 0 via the
     left outer join of Query COUNT'). *)
  let count_sql =
    "SELECT R.NAME FROM CITIES_REGION_A R WHERE 2 <= (SELECT \
     COUNT(S.AVE_HOME_INCOME) FROM CITIES_REGION_B S WHERE S.POPULATION = \
     R.POPULATION)"
  in
  let qc = Fuzzysql.Analyzer.bind_string ~catalog ~terms:Fuzzy.Term.empty count_sql in
  Format.printf "@.cities with >= 2 similarly-populated region-B peers:@.%a@."
    Relation.pp (Unnest.Planner.run qc)
