(** Sensors with imprecise readings: band joins and interval joins.

    Section 3 of the paper relates the fuzzy equi-join to the band join of
    conventional databases and the valid-time join of temporal databases.
    This example runs all three over the same data — two stations logging
    events whose times are known only as intervals and whose measured levels
    are fuzzy — and loads its data through the CSV front-end.

    Run with: [dune exec examples/sensor_intervals.exe] *)

open Frepro
open Frepro.Relational

let schema =
  [ ("EVENT", Schema.TStr); ("TIME", Schema.TNum); ("LEVEL", Schema.TNum) ]

(* TIME is an interval of seconds [TRAP(b, b, e, e)]; LEVEL a fuzzy reading. *)
let station_a_csv =
  {|EVENT,TIME,LEVEL
a-spike,"TRAP(10, 10, 25, 25)","ABOUT(70, 8)"
a-dip,"TRAP(40, 40, 55, 55)","ABOUT(20, 5)"
a-surge,"TRAP(90, 90, 130, 130)","ABOUT(95, 10)"
a-hum,"TRAP(200, 200, 205, 205)","ABOUT(50, 4)"|}

let station_b_csv =
  {|EVENT,TIME,LEVEL
b-knock,"TRAP(18, 18, 30, 30)","ABOUT(65, 6)"
b-quiet,"TRAP(60, 60, 80, 80)","ABOUT(15, 5)"
b-roar,"TRAP(120, 120, 140, 140)","ABOUT(90, 12)"
b-tick,"TRAP(198, 198, 202, 202)","ABOUT(49, 3)"|}

let () =
  let env = Storage.Env.create () in
  let a = Fuzzysql.Loader.load_csv_string env ~name:"A" ~schema station_a_csv in
  let b = Fuzzysql.Loader.load_csv_string env ~name:"B" ~schema station_b_csv in

  (* 1. Valid-time style join: events whose time intervals overlap. *)
  let overlapping =
    Join_band.interval_join ~name:"overlap" ~outer:a ~inner:b ~outer_attr:1
      ~inner_attr:1 ~mem_pages:16 ()
  in
  Format.printf "events with overlapping time intervals:@.%a@." Relation.pp
    (Algebra.project overlapping ~attrs:[ "A.EVENT"; "B.EVENT" ]);

  (* 2. Band join: B-events whose time center lies within [-10, +30] seconds
     of an A-event's center (asymmetric lag window). *)
  let lagged =
    Join_band.band_join ~name:"lagged" ~outer:a ~inner:b ~outer_attr:1
      ~inner_attr:1 ~mem_pages:16 ~c1:10.0 ~c2:30.0 ()
  in
  Format.printf "B within (-10s, +30s) of A:@.%a@." Relation.pp
    (Algebra.project lagged ~attrs:[ "A.EVENT"; "B.EVENT" ]);

  (* 3. The fuzzy equi-join generalises both: joining on the fuzzy LEVEL
     gives graded matches — how possibly did the stations record the same
     level? *)
  let same_level =
    Join_merge.join_eq ~name:"same_level" ~outer:a ~inner:b ~outer_attr:2
      ~inner_attr:2 ~mem_pages:16 ()
  in
  Format.printf "possibly-equal levels (graded):@.%a@." Relation.pp
    (Algebra.project same_level ~attrs:[ "A.EVENT"; "B.EVENT" ]);

  (* 4. And through SQL, with a threshold. *)
  let catalog = Catalog.create env in
  Catalog.add catalog a;
  Catalog.add catalog b;
  let ans =
    Unnest.Planner.run_string ~catalog ~terms:Fuzzy.Term.empty
      "SELECT A.EVENT FROM A WHERE A.LEVEL IN (SELECT B.LEVEL FROM B WHERE \
       B.TIME = A.TIME) WITH D >= 0.3"
  in
  Format.printf
    "A-events matching a simultaneous B-event's level (WITH D >= 0.3):@.%a@."
    Relation.pp ans
