(** fsqld — the Fuzzy SQL daemon.

    Serves the paper's dating-service relations (F, M) plus a generated
    nested workload (R, S, T) over the {!Frepro.Server.Wire} protocol.
    Connect with [fsql --connect HOST:PORT].

    {v
    fsqld [--host H] [--port P] [--workers N] [--queue N] [--domains N]
          [--batch] [--deadline-ms MS] [--seed N] [--trace DIR]
          [--fault-spec SPEC] [--fault-seed N] [--metrics-port P]
          [--query-log FILE] [--slow-ms MS] [--trace-ring N]
          [--data-dir DIR] [--wal-sync always|group|never]
          [--replica-of HOST:PORT] [--max-staleness-ms MS]
          [--promote]
    v}

    [--data-dir DIR] serves from durable storage: the main process opens
    (or initialises) the directory's data file + write-ahead log, runs
    crash recovery if the last shutdown was unclean, loads the demo
    relations durably on first use, checkpoints, and then serves with
    each worker holding its own read-only handles on the recovered
    directory. [--wal-sync] picks the commit durability discipline for
    that initial load (default [group]).

    [--workers] is the number of queries executing in parallel (each on
    its own domain with a private storage environment); [--domains] is
    the per-query merge-join parallelism. [--batch] runs every query on
    the vectorized columnar engine (identical answers and degrees). [--deadline-ms] sets a default
    deadline for clients that do not send one. [--trace DIR] writes one
    Chrome trace file per request to [DIR/req-N.json]. [--fault-spec]
    arms deterministic fault injection on every worker's storage (syntax
    in {!Frepro.Storage.Fault.parse_spec}, e.g.
    ["read:p=0.05;torn:nth=100"]) with per-worker seeds derived from
    [--fault-seed].

    Telemetry: [--metrics-port P] serves Prometheus text on
    [http://127.0.0.1:P/metrics] and a health check on [/healthz] (503
    when the breaker is open or the server is draining); [--query-log
    FILE] appends one JSONL record per finished request (rotated at 64 MB
    to [FILE.1]); [--slow-ms MS] logs only requests at least that slow;
    [--trace-ring N] keeps the last N requests' Chrome traces fetchable
    by request ID with [fsql \trace ID]. SIGINT / SIGTERM trigger a
    graceful drain; SIGHUP reopens the query log at its configured path
    (the logrotate handshake).

    Replication: with [--data-dir], a primary serves [Rep_subscribe]
    streams on its main port. [--replica-of HOST:PORT] (requires
    [--data-dir]) starts a replica instead: catch up from the primary
    (snapshot or local recovery), tail its WAL, and serve read-only
    queries; [--max-staleness-ms MS] rejects queries (retryably) when
    the applied state lags the primary by more than MS.
    [fsqld --promote] is an admin command: connect to [--host]/[--port],
    send [Promote] — the replica bumps and commits its replication
    epoch, fencing the old primary — print the new epoch, and exit. *)

open Frepro

let usage =
  "usage: fsqld [--host H] [--port P] [--workers N] [--queue N] [--domains \
   N]\n\
  \             [--batch] [--deadline-ms MS] [--seed N] [--trace DIR]\n\
  \             [--fault-spec SPEC] [--fault-seed N] [--metrics-port P]\n\
  \             [--query-log FILE] [--slow-ms MS] [--trace-ring N]\n\
  \             [--data-dir DIR] [--wal-sync always|group|never]\n\
  \             [--replica-of HOST:PORT] [--max-staleness-ms MS] [--promote]"

let () =
  let host = ref "127.0.0.1" in
  let port = ref 5499 in
  let workers = ref 2 in
  let queue = ref 16 in
  let domains = ref 1 in
  let batch = ref false in
  let deadline_ms = ref 0 in
  let seed = ref 11 in
  let trace_dir = ref None in
  let fault_spec = ref None in
  let fault_seed = ref 0 in
  let metrics_port = ref None in
  let query_log = ref None in
  let slow_ms = ref 0.0 in
  let trace_ring = ref 64 in
  let data_dir = ref None in
  let wal_sync = ref Storage.Wal.Group in
  let replica_of = ref None in
  let max_staleness_ms = ref None in
  let do_promote = ref false in
  let int_arg name n k rest =
    match int_of_string_opt n with
    | Some v when v >= 0 ->
        k v;
        rest
    | _ ->
        prerr_endline ("fsqld: " ^ name ^ " expects a non-negative integer");
        exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--host" :: h :: rest ->
        host := h;
        parse rest
    | "--port" :: n :: rest -> parse (int_arg "--port" n (( := ) port) rest)
    | "--workers" :: n :: rest ->
        parse (int_arg "--workers" n (( := ) workers) rest)
    | "--queue" :: n :: rest -> parse (int_arg "--queue" n (( := ) queue) rest)
    | "--domains" :: n :: rest ->
        parse (int_arg "--domains" n (( := ) domains) rest)
    | "--batch" :: rest ->
        batch := true;
        parse rest
    | "--deadline-ms" :: n :: rest ->
        parse (int_arg "--deadline-ms" n (( := ) deadline_ms) rest)
    | "--seed" :: n :: rest -> parse (int_arg "--seed" n (( := ) seed) rest)
    | "--trace" :: dir :: rest ->
        trace_dir := Some dir;
        parse rest
    | "--fault-spec" :: s :: rest ->
        (match Storage.Fault.parse_spec s with
        | Ok spec -> fault_spec := Some spec
        | Error m ->
            prerr_endline ("fsqld: bad --fault-spec: " ^ m);
            exit 2);
        parse rest
    | "--fault-seed" :: n :: rest ->
        parse (int_arg "--fault-seed" n (( := ) fault_seed) rest)
    | "--metrics-port" :: n :: rest ->
        parse
          (int_arg "--metrics-port" n (fun v -> metrics_port := Some v) rest)
    | "--query-log" :: path :: rest ->
        query_log := Some path;
        parse rest
    | "--slow-ms" :: n :: rest ->
        parse (int_arg "--slow-ms" n (fun v -> slow_ms := float_of_int v) rest)
    | "--trace-ring" :: n :: rest ->
        parse
          (int_arg "--trace-ring" n
             (fun v ->
               if v < 1 then begin
                 prerr_endline "fsqld: --trace-ring expects at least 1";
                 exit 2
               end;
               trace_ring := v)
             rest)
    | "--data-dir" :: dir :: rest ->
        data_dir := Some dir;
        parse rest
    | "--replica-of" :: addr :: rest ->
        replica_of := Some addr;
        parse rest
    | "--max-staleness-ms" :: n :: rest ->
        parse
          (int_arg "--max-staleness-ms" n
             (fun v -> max_staleness_ms := Some v)
             rest)
    | "--promote" :: rest ->
        do_promote := true;
        parse rest
    | "--wal-sync" :: s :: rest ->
        (match Storage.Wal.sync_mode_of_string s with
        | Some m -> wal_sync := m
        | None ->
            prerr_endline "fsqld: --wal-sync expects always, group or never";
            exit 2);
        parse rest
    | arg :: _ ->
        prerr_endline ("fsqld: unknown argument " ^ arg);
        prerr_endline usage;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !do_promote then begin
    (* Admin mode: ask the server at --host/--port to promote itself. *)
    match
      let c =
        Server.Client.connect ~host:!host ~timeout_ms:5000 ~port:!port ()
      in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c)
        (fun () -> Server.Client.promote c)
    with
    | Ok epoch ->
        Printf.printf "fsqld: promoted; replication epoch is now %d\n%!" epoch;
        exit 0
    | Error m ->
        prerr_endline ("fsqld: promote refused: " ^ m);
        exit 1
    | exception e ->
        prerr_endline ("fsqld: promote failed: " ^ Printexc.to_string e);
        exit 1
  end;
  (match (!replica_of, !data_dir) with
  | Some _, None ->
      prerr_endline "fsqld: --replica-of requires --data-dir";
      exit 2
  | _ -> ());
  let on_trace =
    Option.map
      (fun dir ->
        (try Unix.mkdir dir 0o755
         with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ());
        let next = Atomic.make 0 in
        fun trace ->
          let n = Atomic.fetch_and_add next 1 in
          let path = Filename.concat dir (Printf.sprintf "req-%d.json" n) in
          Storage.Trace.write_chrome trace ~path)
      !trace_dir
  in
  (* Durable serving: recover (writable) in the main process, load the
     demo relations durably if the directory is fresh, checkpoint and
     close — then every shared-nothing worker opens its own read-only
     handles on the now-clean directory. *)
  let durable_setup env catalog =
    let durable = Relational.Catalog.load_durable env in
    List.iter
      (fun name ->
        match Relational.Catalog.find durable name with
        | Some rel -> Relational.Catalog.add catalog rel
        | None -> ())
      (Relational.Catalog.names durable)
  in
  let make_env, setup, sender, replica =
    match (!data_dir, !replica_of) with
    | None, _ -> (None, Server.Demo.server_setup ~seed:!seed (), None, None)
    | Some dir, None ->
        let env = Storage.Env.open_durable ~dir ~wal_sync:!wal_sync () in
        (match Storage.Env.recovery env with
        | Some r ->
            Printf.printf "fsqld: recovery: %s\n%!"
              (Format.asprintf "%a" Storage.Recovery.pp_report r)
        | None -> ());
        let catalog = Relational.Catalog.load_durable env in
        if Relational.Catalog.names catalog = [] then begin
          Server.Demo.server_setup ~durable:true ~seed:!seed () env
            (Relational.Catalog.create env);
          Storage.Env.commit env;
          Printf.printf "fsqld: initialised demo relations in %s\n%!" dir
        end;
        (* The environment stays open: the replication sender streams the
           live WAL from it. Workers still open their own read-only
           handles — the on-disk log is clean (committed) at this point. *)
        let sender = Server.Replication.Sender.create ~env in
        let make_env ~pool_pages =
          Storage.Env.open_durable ~dir ~readonly:true ~pool_pages ()
        in
        (Some make_env, durable_setup, Some sender, None)
    | Some dir, Some primary ->
        let replica = Server.Replication.Replica.create ~dir ~primary () in
        Server.Replication.Replica.start replica;
        Printf.printf "fsqld: replica of %s, syncing %s...\n%!" primary dir;
        if not (Server.Replication.Replica.wait_synced ~timeout_s:60.0 replica)
        then
          Printf.printf
            "fsqld: warning: initial catch-up has not completed; queries \
             will be rejected as stale until it does\n%!";
        let make_env ~pool_pages =
          Storage.Env.open_durable ~dir ~readonly:true ~pool_pages ()
        in
        (Some make_env, durable_setup, None, Some replica)
  in
  let daemon =
    Server.Daemon.start ~host:!host ~port:!port ~workers:!workers
      ~queue_capacity:!queue
      ?default_deadline_ms:
        (if !deadline_ms > 0 then Some !deadline_ms else None)
      ~domains:!domains ~batch:!batch ?on_trace ?fault_spec:!fault_spec
      ~fault_seed:!fault_seed ?metrics_port:!metrics_port
      ?query_log:!query_log
      ?slow_ms:(if !slow_ms > 0.0 then Some !slow_ms else None)
      ~trace_ring_capacity:!trace_ring ?make_env ?sender ?replica
      ?max_staleness_ms:!max_staleness_ms ~setup ()
  in
  Printf.printf
    "fsqld: listening on %s:%d (workers=%d, queue=%d, domains=%d%s%s%s%s%s)\n%!"
    !host
    (Server.Daemon.port daemon)
    (Server.Daemon.workers daemon)
    !queue !domains
    (match !data_dir with
    | Some d ->
        Printf.sprintf ", data-dir=%s wal-sync=%s%s" d
          (Storage.Wal.sync_mode_name !wal_sync)
          (match !replica_of with
          | Some p -> ", replica-of=" ^ p
          | None -> ", primary")
    | None -> "")
    (if !batch then ", batch" else "")
    (if !deadline_ms > 0 then Printf.sprintf ", deadline=%dms" !deadline_ms
     else "")
    (match !trace_dir with Some d -> ", trace=" ^ d | None -> "")
    (match !fault_spec with
    | Some spec ->
        Printf.sprintf ", faults=%s seed=%d"
          (Storage.Fault.spec_to_string spec)
          !fault_seed
    | None -> "");
  (match Server.Daemon.metrics_port daemon with
  | Some p ->
      Printf.printf "fsqld: metrics on http://127.0.0.1:%d/metrics\n%!" p
  | None -> ());
  (match !query_log with
  | Some path ->
      Printf.printf "fsqld: query log at %s%s\n%!" path
        (if !slow_ms > 0.0 then Printf.sprintf " (slow-ms=%g)" !slow_ms else "")
  | None -> ());
  let stop = Atomic.make false in
  let hup = Atomic.make false in
  let request_stop _ = Atomic.set stop true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  (* SIGHUP = logrotate's "I renamed your log, reopen it". The handler
     only sets a flag; the reopen itself runs on the main loop. *)
  (try Sys.set_signal Sys.sighup (Sys.Signal_handle (fun _ -> Atomic.set hup true))
   with Invalid_argument _ -> ());
  while not (Atomic.get stop) do
    if Atomic.compare_and_set hup true false then begin
      Server.Daemon.reopen_query_log daemon;
      print_string "fsqld: query log reopened\n";
      flush stdout
    end;
    Unix.sleepf 0.2
  done;
  print_string "fsqld: draining...\n";
  flush stdout;
  Server.Daemon.stop daemon;
  (match sender with
  | Some s -> Server.Replication.Sender.stop s
  | None -> ());
  (match replica with
  | Some r -> Server.Replication.Replica.stop r
  | None -> ());
  print_string "fsqld: clean shutdown\n";
  flush stdout
