(** fsql — an interactive Fuzzy SQL shell over the reproduction engine.

    Starts with the paper's dating-service database loaded (relations F and
    M) plus a generated pair R / S for experimentation. Statements end with
    [;]. Meta commands:
    {v
    \d           list relations        \d NAME      print a relation
    \terms       list linguistic terms \shape SQL;  classify without running
    \strategy X  naive|nl|merge|auto   \timing      toggle timing
    \domains N   execution parallelism \help        this help
    \batch on|off  columnar engine     \analyze SQL; run + per-operator
    \trace PATH|off  Chrome trace of                 actual stats
                  each query to PATH   \check SQL;  static analysis only
    \q           quit
    v}
    Invalid statements print rustc-style caret diagnostics with stable
    [FSQL0xx] codes; [\check SQL;] additionally reports the warnings
    (always-empty predicates, unsatisfiable threshold cuts, contradictory
    conjunctions, nested-loop-only shapes) without running the query.

    Start with [fsql --domains N] to set the initial parallelism (and
    [--batch] to start on the vectorized columnar engine),
    [fsql --check FILE] to batch-lint every ';'-terminated statement in
    FILE against the demo catalog (exit 1 when any statement has an
    error), or [fsql --connect HOST:PORT] to run statements against a
    remote fsqld instead of the in-process engine (meta commands: \q
    \help \timing \domains \deadline \retry \metrics \top \trace). Every
    remote query carries a client-generated request ID; failures print
    it, [\trace ID] fetches that request's server-side Chrome trace, and
    [\top] shows the server's live windowed metrics. *)

open Frepro
open Frepro.Relational

type state = {
  catalog : Catalog.t;
  terms : Fuzzy.Term.t;
  mutable check : Fuzzysql.Check.ctx;
      (** rebuilt after [\load] so the satisfiability checks see the new
          relation's loaded domains *)
  mutable strategy : Unnest.Planner.strategy;
  mutable timing : bool;
  mutable domains : int;
  mutable batch : bool;
  mutable trace_file : string option;
}

let load_demo env catalog =
  Server.Demo.load_dating env catalog;
  Server.Demo.load_generated ~seed:7 ~n:500 ~groups:50 env catalog

let strategy_of_string = function
  | "naive" -> Some Unnest.Planner.Naive
  | "nl" | "nested-loop" -> Some Unnest.Planner.Nested_loop
  | "merge" | "unnest" -> Some Unnest.Planner.Unnest_merge
  | "auto" -> Some Unnest.Planner.Auto
  | _ -> None

let help () =
  print_string
    "statements end with ';'. Meta commands:\n\
    \  \\d            list relations\n\
    \  \\d NAME       print a relation\n\
    \  \\terms        list linguistic terms\n\
    \  \\shape SQL;   classify a query without running it\n\
    \  \\check SQL;   static analysis only: errors and warnings\n\
    \                (empty predicates, dead threshold cuts,\n\
    \                contradictions, nested-loop-only shapes)\n\
    \  \\explain SQL; show the evaluation plan and estimates\n\
    \  \\strategy X   naive | nl | merge | auto\n\
    \  \\domains N    merge-join execution parallelism (1 = sequential)\n\
    \  \\batch on|off vectorized columnar merge-join engine (same answers)\n\
    \  \\analyze SQL; run a query and print per-operator actual\n\
    \                time / I/O / rows vs estimates\n\
    \  \\trace PATH   write a Chrome trace of each query to PATH\n\
    \                (load in chrome://tracing or Perfetto); \\trace off\n\
    \  \\save DIR     save all relations to DIR/<name>.frel\n\
    \  \\load PATH    load a saved relation\n\
    \  \\timing       toggle per-query timing\n\
    \  \\help         this help\n\
    \  \\q            quit\n\
     fuzzy literals: TRAP(a,b,c,d)  TRI(a,p,d)  ABOUT(v[,spread])  \
     DIST(v:d, ...)\n\
     clauses: GROUPBY, HAVING, ORDER BY D [DESC|ASC], LIMIT k, WITH D >= z\n\
     example: SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME \
     IN\n\
    \         (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age');\n"

(* Binding through the static analyzer: one pass collects every
   diagnostic. Error-severity findings reject the statement (printed as
   caret blocks); warnings are reported only by [\check] so the output
   of a valid statement stays an answer table. *)
let bind_checked st sql =
  match
    Fuzzysql.Check.check_string ~classify:Unnest.Classify.shape_hint st.check
      sql
  with
  | Some q, _ -> Ok q
  | None, diags -> Error (Fuzzysql.Diagnostic.errors diags)

let print_diags sql diags =
  if diags <> [] then
    print_endline (Fuzzysql.Diagnostic.render_all ~source:sql diags)

let strip_semi sql =
  if String.length sql > 0 && sql.[String.length sql - 1] = ';' then
    String.sub sql 0 (String.length sql - 1)
  else sql

let run_sql st sql =
  match bind_checked st sql with
  | Error errs -> print_diags sql errs
  | Ok q -> (
      try
        let trace = Option.map (fun _ -> Storage.Trace.create ()) st.trace_file in
        let t0 = Unix.gettimeofday () in
        let answer =
          Unnest.Planner.run ~strategy:st.strategy ~domains:st.domains
            ~batch:st.batch ?trace q
        in
        let dt = Unix.gettimeofday () -. t0 in
        (match (st.trace_file, trace) with
        | Some path, Some tr ->
            Storage.Trace.write_chrome tr ~path;
            Format.printf "trace written to %s (%d spans)@." path
              (Storage.Trace.span_count tr)
        | _ -> ());
        let limit = 40 in
        Format.printf "%a@." Schema.pp (Relation.schema answer);
        let shown = ref 0 in
        Relation.iter answer (fun t ->
            incr shown;
            if !shown <= limit then Format.printf "  %a@." Ftuple.pp t);
        if !shown > limit then Format.printf "  ... (%d more)@." (!shown - limit);
        Format.printf "(%d tuple%s" (Relation.cardinality answer)
          (if Relation.cardinality answer = 1 then "" else "s");
        if st.timing then Format.printf ", %.1f ms" (1000.0 *. dt);
        Format.printf ")@."
      with Unnest.Planner.Unsupported msg ->
        Format.printf "unsupported: %s@." msg)

let meta st line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "\\q" ] | [ "\\quit" ] -> raise Exit
  | [ "\\help" ] | [ "\\h" ] -> help ()
  | [ "\\d" ] ->
      List.iter
        (fun n ->
          match Catalog.find st.catalog n with
          | Some rel ->
              Format.printf "  %a  (%d tuples, %d pages)@." Schema.pp
                (Relation.schema rel) (Relation.cardinality rel)
                (Relation.num_pages rel)
          | None -> ())
        (Catalog.names st.catalog)
  | [ "\\d"; name ] -> (
      match Catalog.find st.catalog name with
      | Some rel -> Format.printf "%a" Relation.pp rel
      | None -> Format.printf "no relation %s@." name)
  | [ "\\terms" ] ->
      List.iter
        (fun n ->
          Format.printf "  %-14s %a@." n Fuzzy.Possibility.pp
            (Option.get (Fuzzy.Term.lookup st.terms n)))
        (Fuzzy.Term.names st.terms)
  | [ "\\strategy" ] ->
      Format.printf "strategy: %s@." (Unnest.Planner.strategy_to_string st.strategy)
  | [ "\\strategy"; s ] -> (
      match strategy_of_string s with
      | Some strat ->
          st.strategy <- strat;
          Format.printf "strategy set to %s@."
            (Unnest.Planner.strategy_to_string strat)
      | None -> Format.printf "unknown strategy %s (naive|nl|merge|auto)@." s)
  | [ "\\domains" ] -> Format.printf "domains: %d@." st.domains
  | [ "\\domains"; n ] -> (
      match int_of_string_opt n with
      | Some d when d >= 1 ->
          st.domains <- d;
          Format.printf "domains set to %d@." d
      | _ -> Format.printf "domains must be a positive integer@.")
  | [ "\\batch" ] ->
      Format.printf "batch: %s@." (if st.batch then "on" else "off")
  | [ "\\batch"; "on" ] ->
      st.batch <- true;
      Format.printf "batch on (vectorized columnar engine)@."
  | [ "\\batch"; "off" ] ->
      st.batch <- false;
      Format.printf "batch off (scalar engine)@."
  | [ "\\batch"; _ ] -> Format.printf "usage: \\batch on|off@."
  | [ "\\save"; dir ] ->
      Relational.Persist.save_catalog st.catalog ~dir;
      Format.printf "saved %d relation(s) to %s@."
        (List.length (Catalog.names st.catalog))
        dir
  | [ "\\load"; path ] -> (
      try
        let rel = Relational.Persist.load (Catalog.env st.catalog) ~path in
        Catalog.add st.catalog rel;
        (* The satisfiability checks compare predicate supports against
           each relation's loaded domain; refresh it for the new data. *)
        st.check <- Fuzzysql.Check.ctx ~catalog:st.catalog ~terms:st.terms;
        Format.printf "loaded %a (%d tuples)@." Schema.pp (Relation.schema rel)
          (Relation.cardinality rel)
      with
      | Relational.Persist.Format_error msg -> Format.printf "load failed: %s@." msg
      | Sys_error msg -> Format.printf "load failed: %s@." msg)
  | [ "\\timing" ] ->
      st.timing <- not st.timing;
      Format.printf "timing %s@." (if st.timing then "on" else "off")
  | [ "\\trace" ] ->
      Format.printf "trace: %s@."
        (match st.trace_file with Some p -> p | None -> "off")
  | [ "\\trace"; "off" ] ->
      st.trace_file <- None;
      Format.printf "trace off@."
  | [ "\\trace"; path ] ->
      st.trace_file <- Some path;
      Format.printf "tracing each query to %s (Chrome trace_event format)@."
        path
  | "\\check" :: rest ->
      let sql = strip_semi (String.concat " " rest) in
      let _, diags =
        Fuzzysql.Check.check_string ~classify:Unnest.Classify.shape_hint
          st.check sql
      in
      print_diags sql diags;
      Format.printf "%s@." (Fuzzysql.Diagnostic.summary diags)
  | "\\analyze" :: rest -> (
      let sql = strip_semi (String.concat " " rest) in
      match bind_checked st sql with
      | Error errs -> print_diags sql errs
      | Ok q -> (
          try
            let a =
              Unnest.Explain.analyze ~strategy:st.strategy ~domains:st.domains q
            in
            print_string a.Unnest.Explain.text;
            match st.trace_file with
            | Some path ->
                Storage.Trace.write_chrome a.Unnest.Explain.trace ~path;
                Format.printf "trace written to %s@." path
            | None -> ()
          with Unnest.Planner.Unsupported msg ->
            Format.printf "unsupported: %s@." msg))
  | "\\explain" :: rest -> (
      let sql = strip_semi (String.concat " " rest) in
      match bind_checked st sql with
      | Error errs -> print_diags sql errs
      | Ok q -> print_string (Unnest.Explain.explain q))
  | "\\shape" :: rest -> (
      let sql = strip_semi (String.concat " " rest) in
      match bind_checked st sql with
      | Error errs -> print_diags sql errs
      | Ok q ->
          Format.printf "%s@."
            (Unnest.Classify.to_string (Unnest.Classify.classify q)))
  | _ -> Format.printf "unknown meta command (try \\help)@."

(* ---- batch lint: fsql --check FILE ---- *)

(* Split the file into ';'-terminated statements, honouring single-quoted
   strings (a doubled '' escape toggles twice, which round-trips) and
   dropping [--] comment lines so a corpus file can be documented. *)
let split_statements text =
  let stmts = ref [] in
  let buf = Buffer.create 128 in
  let in_str = ref false in
  String.iter
    (fun c ->
      if c = '\'' then begin
        in_str := not !in_str;
        Buffer.add_char buf c
      end
      else if c = ';' && not !in_str then begin
        stmts := Buffer.contents buf :: !stmts;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    text;
  stmts := Buffer.contents buf :: !stmts;
  List.filter (fun s -> s <> "") (List.rev_map String.trim !stmts)

let check_file path =
  let text =
    match open_in path with
    | exception Sys_error msg ->
        prerr_endline ("fsql: " ^ msg);
        exit 2
    | ic ->
        let n = in_channel_length ic in
        let raw = really_input_string ic n in
        close_in ic;
        let lines = String.split_on_char '\n' raw in
        String.concat "\n"
          (List.filter
             (fun l ->
               let t = String.trim l in
               not (String.length t >= 2 && t.[0] = '-' && t.[1] = '-'))
             lines)
  in
  let env = Storage.Env.create () in
  let catalog = Catalog.create env in
  load_demo env catalog;
  let check = Fuzzysql.Check.ctx ~catalog ~terms:Fuzzy.Term.paper in
  let errors = ref 0 in
  let warnings = ref 0 in
  List.iteri
    (fun i sql ->
      if i > 0 then print_newline ();
      Format.printf "%s;@." sql;
      let _, diags =
        Fuzzysql.Check.check_string ~classify:Unnest.Classify.shape_hint check
          sql
      in
      print_diags sql diags;
      Format.printf "%s@." (Fuzzysql.Diagnostic.summary diags);
      List.iter
        (fun d ->
          if Fuzzysql.Diagnostic.is_error d then incr errors else incr warnings)
        diags)
    (split_statements text);
  Format.printf "@.%s: %d error%s, %d warning%s@." path !errors
    (if !errors = 1 then "" else "s")
    !warnings
    (if !warnings = 1 then "" else "s");
  exit (if !errors > 0 then 1 else 0)

(* ---- remote mode: statements run on a fsqld over the wire protocol ---- *)

type remote_state = {
  client : Server.Client.t;
  mutable r_timing : bool;
  mutable r_domains : int; (* 0 = use the server's configured parallelism *)
  mutable r_deadline_ms : int; (* 0 = use the server's default deadline *)
  mutable r_retries : int; (* 0 = no client-side retry *)
}

let remote_help () =
  print_string
    "statements end with ';' and run on the remote fsqld. Meta commands:\n\
    \  \\domains N    per-query parallelism (0 = server default)\n\
    \  \\deadline MS  per-query deadline in milliseconds (0 = server default)\n\
    \  \\retry N      retry overloaded/transient replies up to N extra times\n\
    \                with backoff (0 = off)\n\
    \  \\metrics      print the server's metrics registry (JSON)\n\
    \  \\top          server's windowed metrics (qps, p50/p99, queue,\n\
    \                breaker); \\top N polls N times at 2s intervals\n\
    \  \\trace ID     fetch a request's Chrome trace by its request ID\n\
    \                (printed on failures); \\trace ID FILE writes it\n\
    \  \\promote      promote a replica server to primary (bumps the\n\
    \                replication epoch, fencing the old primary)\n\
    \  \\timing       toggle per-query timing\n\
    \  \\help         this help\n\
    \  \\q            quit\n"

let remote_sql st sql =
  let t0 = Unix.gettimeofday () in
  let retry =
    if st.r_retries > 0 then
      Some { Server.Retry.default with max_attempts = st.r_retries + 1 }
    else None
  in
  match
    Server.Client.query ~deadline_ms:st.r_deadline_ms ~domains:st.r_domains
      ?retry st.client sql
  with
  | Server.Client.Answer { columns; rows; server_elapsed_s = _ } ->
      let dt = Unix.gettimeofday () -. t0 in
      Format.printf "%s@." (String.concat " | " columns);
      let limit = 40 in
      List.iteri
        (fun i (r : Server.Client.row) ->
          if i < limit then
            Format.printf "  %s | %.3f@." (String.concat " | " r.values)
              r.degree)
        rows;
      let n = List.length rows in
      if n > limit then Format.printf "  ... (%d more)@." (n - limit);
      Format.printf "(%d tuple%s" n (if n = 1 then "" else "s");
      if st.r_timing then Format.printf ", %.1f ms" (1000.0 *. dt);
      Format.printf ")@."
  | Server.Client.Failed msg ->
      Format.printf "error: %s@.(request id %s — \\trace %s for the server \
                     trace)@."
        msg
        (Server.Client.last_request_id st.client)
        (Server.Client.last_request_id st.client)
  | Server.Client.Rejected { code = _; diagnostics } ->
      (* The admission-time static analyzer refused the query; the server
         never queued it. The report is pre-rendered. *)
      Format.printf "%s@.(rejected at admission, request id %s)@." diagnostics
        (Server.Client.last_request_id st.client)
  | Server.Client.Retryable msg ->
      Format.printf
        "transient server error: %s (safe to retry, see \\retry)@.(request \
         id %s)@."
        msg
        (Server.Client.last_request_id st.client)
  | Server.Client.Overloaded ->
      Format.printf "server overloaded (admission shed the query), retry@."
  | Server.Client.Cancelled reason ->
      Format.printf "cancelled: %s@.(request id %s)@." reason
        (Server.Client.last_request_id st.client)

let remote_meta st line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "\\q" ] | [ "\\quit" ] -> raise Exit
  | [ "\\help" ] | [ "\\h" ] -> remote_help ()
  | [ "\\timing" ] ->
      st.r_timing <- not st.r_timing;
      Format.printf "timing %s@." (if st.r_timing then "on" else "off")
  | [ "\\domains" ] ->
      Format.printf "domains: %d (0 = server default)@." st.r_domains
  | [ "\\domains"; n ] -> (
      match int_of_string_opt n with
      | Some d when d >= 0 ->
          st.r_domains <- d;
          Format.printf "domains set to %d@." d
      | _ -> Format.printf "domains must be a non-negative integer@.")
  | [ "\\deadline" ] ->
      Format.printf "deadline: %d ms (0 = server default)@." st.r_deadline_ms
  | [ "\\deadline"; n ] -> (
      match int_of_string_opt n with
      | Some ms when ms >= 0 ->
          st.r_deadline_ms <- ms;
          Format.printf "deadline set to %d ms@." ms
      | _ -> Format.printf "deadline must be a non-negative integer@.")
  | [ "\\retry" ] ->
      Format.printf "retry: %d (0 = off)@." st.r_retries
  | [ "\\retry"; n ] -> (
      match int_of_string_opt n with
      | Some r when r >= 0 ->
          st.r_retries <- r;
          Format.printf "retry set to %d@." r
      | _ -> Format.printf "retry must be a non-negative integer@.")
  | [ "\\metrics" ] -> print_endline (Server.Client.metrics_json st.client)
  | [ "\\top" ] -> print_string (Server.Client.top_text st.client)
  | [ "\\top"; n ] -> (
      match int_of_string_opt n with
      | Some polls when polls >= 1 ->
          (* A bounded live view: clear + reprint every 2 s. *)
          for i = 1 to polls do
            if i > 1 then Unix.sleepf 2.0;
            print_string "\027[2J\027[H";
            Printf.printf "fsqld top — poll %d/%d\n" i polls;
            print_string (Server.Client.top_text st.client);
            flush stdout
          done
      | _ -> Format.printf "usage: \\top [N]  (N = number of 2s polls)@.")
  | [ "\\trace"; id ] -> (
      match Server.Client.trace_json st.client id with
      | Some json -> print_endline json
      | None ->
          Format.printf
            "no trace for request %s (evicted from the server's ring, or \
             never seen)@."
            id)
  | [ "\\trace"; id; file ] -> (
      match Server.Client.trace_json st.client id with
      | Some json ->
          let oc = open_out file in
          output_string oc json;
          close_out oc;
          Format.printf "trace %s written to %s (Chrome trace_event format)@."
            id file
      | None ->
          Format.printf
            "no trace for request %s (evicted from the server's ring, or \
             never seen)@."
            id)
  | [ "\\promote" ] -> (
      match Server.Client.promote st.client with
      | Ok epoch ->
          Format.printf "promoted; replication epoch is now %d@." epoch
      | Error m -> Format.printf "promote refused: %s@." m)
  | _ ->
      Format.printf "unknown meta command in --connect mode (try \\help)@."

let remote_repl addr ~domains =
  let client =
    (* Bounded connect: an unreachable server fails in 5 s instead of
       hanging for the kernel's SYN-retry budget. *)
    try Server.Client.of_addr ~timeout_ms:5000 addr with
    | Server.Client.Connect_timeout ->
        Printf.eprintf "fsql: cannot connect to %s: timed out\n" addr;
        exit 1
    | Unix.Unix_error (e, _, _) ->
        Printf.eprintf "fsql: cannot connect to %s: %s\n" addr
          (Unix.error_message e);
        exit 1
    | Invalid_argument msg ->
        prerr_endline ("fsql: " ^ msg);
        exit 2
  in
  let st =
    { client; r_timing = true; r_domains = domains; r_deadline_ms = 0;
      r_retries = 0 }
  in
  let interactive = Unix.isatty Unix.stdin in
  if interactive then
    Printf.printf "fsql - connected to %s (\\help for help, \\q to quit)\n%!"
      addr;
  let buf = Buffer.create 256 in
  (try
     while true do
       if interactive then begin
         if Buffer.length buf = 0 then print_string "fsql> "
         else print_string "  ..> ";
         flush stdout
       end;
       let line = try input_line stdin with End_of_file -> raise Exit in
       let trimmed = String.trim line in
       if Buffer.length buf = 0 && String.length trimmed > 0 && trimmed.[0] = '\\'
       then remote_meta st trimmed
       else begin
         Buffer.add_string buf line;
         Buffer.add_char buf ' ';
         let acc = String.trim (Buffer.contents buf) in
         if String.length acc > 0 && acc.[String.length acc - 1] = ';' then begin
           Buffer.clear buf;
           let sql = String.sub acc 0 (String.length acc - 1) in
           if String.trim sql <> "" then remote_sql st sql
         end
       end
     done
   with
  | Exit -> ()
  | End_of_file | Sys_error _ | Server.Wire.Connection_closed ->
      prerr_endline "fsql: server closed the connection"
  | Server.Wire.Protocol_error msg ->
      prerr_endline ("fsql: protocol error: " ^ msg));
  Server.Client.close st.client;
  if interactive then print_endline "bye"

let () =
  let domains = ref None in
  let batch = ref false in
  let connect = ref None in
  let lint = ref None in
  let rec parse_args = function
    | [] -> ()
    | "--domains" :: n :: rest -> (
        match int_of_string_opt n with
        | Some d when d >= 1 ->
            domains := Some d;
            parse_args rest
        | _ ->
            prerr_endline "fsql: --domains expects a positive integer";
            exit 2)
    | [ "--domains" ] ->
        prerr_endline "fsql: --domains expects a positive integer";
        exit 2
    | "--batch" :: rest ->
        batch := true;
        parse_args rest
    | "--connect" :: addr :: rest ->
        connect := Some addr;
        parse_args rest
    | [ "--connect" ] ->
        prerr_endline "fsql: --connect expects HOST:PORT";
        exit 2
    | "--check" :: file :: rest ->
        lint := Some file;
        parse_args rest
    | [ "--check" ] ->
        prerr_endline "fsql: --check expects a file of ';'-terminated statements";
        exit 2
    | arg :: _ ->
        prerr_endline
          ("fsql: unknown argument " ^ arg
         ^ " (usage: fsql [--domains N] [--batch] [--connect HOST:PORT] \
            [--check FILE])");
        exit 2
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  match (!lint, !connect) with
  | Some file, _ -> check_file file
  | None, Some addr ->
      remote_repl addr ~domains:(Option.value ~default:0 !domains)
  | None, None ->
  let domains = ref (Option.value ~default:1 !domains) in
  let env = Storage.Env.create () in
  let catalog = Catalog.create env in
  load_demo env catalog;
  let st =
    {
      catalog;
      terms = Fuzzy.Term.paper;
      check = Fuzzysql.Check.ctx ~catalog ~terms:Fuzzy.Term.paper;
      strategy = Unnest.Planner.Auto;
      timing = true;
      domains = !domains;
      batch = !batch;
      trace_file = None;
    }
  in
  let interactive = Unix.isatty Unix.stdin in
  if interactive then begin
    print_endline "fsql - nested fuzzy SQL shell (\\help for help, \\q to quit)";
    print_endline "loaded: F, M (the paper's Example 4.1), R, S (generated, 500 tuples)"
  end;
  let buf = Buffer.create 256 in
  (try
     while true do
       if interactive then
         if Buffer.length buf = 0 then print_string "fsql> " else print_string "  ..> ";
       if interactive then flush stdout;
       let line = try input_line stdin with End_of_file -> raise Exit in
       let trimmed = String.trim line in
       if Buffer.length buf = 0 && String.length trimmed > 0 && trimmed.[0] = '\\'
       then meta st trimmed
       else begin
         Buffer.add_string buf line;
         Buffer.add_char buf ' ';
         let acc = String.trim (Buffer.contents buf) in
         if String.length acc > 0 && acc.[String.length acc - 1] = ';' then begin
           Buffer.clear buf;
           let sql = String.sub acc 0 (String.length acc - 1) in
           if String.trim sql <> "" then run_sql st sql
         end
       end
     done
   with Exit -> ());
  if interactive then print_endline "bye"
